// Tests for the experiment service (service/service.hpp + server.hpp): the
// protocol router's strictness, the cache-hit contract the ISSUE acceptance
// criteria pin down — a repeated run request is served from cache without
// re-sampling, and the cached record is byte-identical to a fresh
// recomputation at any thread count — plus the stdio and Unix-socket
// transports end to end.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"
#include "service/server.hpp"

namespace vlcsa::service {
namespace {

using harness::JsonParse;
using harness::JsonValue;
using harness::parse_json;

// Small but real registry experiments, so runs stay fast.
constexpr const char* kErrorRateRun =
    R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000})";
constexpr const char* kChainProfileRun =
    R"({"request": "run", "experiment": "fig6.1/uniform-unsigned", "samples": 2000})";

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("vlcsa_service_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

JsonValue parse_reply(const ExperimentService::Reply& reply) {
  JsonParse parse = parse_json(reply.line);
  EXPECT_TRUE(parse.ok()) << reply.line << " -> " << parse.error;
  EXPECT_EQ(parse.value.kind(), JsonValue::Kind::kObject);
  return parse.value;
}

std::string field(const JsonValue& response, const char* name) {
  const JsonValue* value = response.find(name);
  return value != nullptr && value->kind() == JsonValue::Kind::kString ? value->as_string()
                                                                       : std::string();
}

void expect_error_containing(ExperimentService& service, const std::string& line,
                             const std::string& needle) {
  const JsonValue response = parse_reply(service.handle_line(line));
  EXPECT_EQ(field(response, "status"), "error") << line;
  EXPECT_NE(field(response, "error").find(needle), std::string::npos)
      << line << " -> " << field(response, "error");
}

/// Extracts the embedded record's bytes by re-rendering is forbidden (it
/// must stay byte-identical), so runs compare records through the cache
/// file, whose content is exactly record + '\n'.
std::string read_single_cache_file(const std::string& dir) {
  std::string found;
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++count;
    found = entry.path().string();
  }
  EXPECT_EQ(count, 1) << "expected exactly one cache file in " << dir;
  std::ifstream in(found, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(ExperimentService, RunMissThenMemoryHitWithoutResampling) {
  ExperimentService service({temp_dir("hit"), 64, 1});

  const JsonValue first = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(first, "status"), "ok");
  EXPECT_EQ(field(first, "cache"), "miss");
  ASSERT_NE(first.find("record"), nullptr);
  EXPECT_EQ(field(*first.find("record"), "experiment"), "fig7.1/n64-k6");

  const JsonValue second = parse_reply(service.handle_line(kErrorRateRun));
  EXPECT_EQ(field(second, "cache"), "hit-memory");

  // "Without re-sampling" is observable through the counters: one miss (the
  // only compute), one memory hit, one store.
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.stores, 1u);

  // And the hit carried the identical record.
  std::uint64_t errors_first = 0, errors_second = 0;
  ASSERT_TRUE(first.find("record")->find("actual_errors")->to_u64(errors_first));
  ASSERT_TRUE(second.find("record")->find("actual_errors")->to_u64(errors_second));
  EXPECT_EQ(errors_first, errors_second);
}

TEST(ExperimentService, CachedRecordByteIdenticalAcrossThreadCounts) {
  // The acceptance criterion: the record cached by one service must be
  // byte-identical to a fresh recomputation at any --threads setting, for
  // both eval paths.
  const std::string dir_a = temp_dir("threads1");
  const std::string dir_b = temp_dir("threads4");
  {
    ExperimentService service({dir_a, 64, 1});
    EXPECT_EQ(field(parse_reply(service.handle_line(kErrorRateRun)), "cache"), "miss");
  }
  {
    ExperimentService service({dir_b, 64, 4});
    EXPECT_EQ(field(parse_reply(service.handle_line(kErrorRateRun)), "cache"), "miss");
  }
  EXPECT_EQ(read_single_cache_file(dir_a), read_single_cache_file(dir_b));
}

TEST(ExperimentService, ScalarAndBatchedPathsCacheSeparatelyButAgreeOnCounters) {
  ExperimentService service({"", 64, 1});
  const std::string batched =
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "eval_path": "batched"})";
  const std::string scalar =
      R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 2000, "eval_path": "scalar"})";
  const JsonValue first = parse_reply(service.handle_line(batched));
  const JsonValue second = parse_reply(service.handle_line(scalar));
  EXPECT_EQ(field(second, "cache"), "miss");  // distinct key: no false sharing
  // The batch-vs-scalar differential contract holds through the service too.
  std::uint64_t batched_errors = 0, scalar_errors = 0;
  ASSERT_TRUE(first.find("record")->find("actual_errors")->to_u64(batched_errors));
  ASSERT_TRUE(second.find("record")->find("actual_errors")->to_u64(scalar_errors));
  EXPECT_EQ(batched_errors, scalar_errors);
}

TEST(ExperimentService, DiskHitAfterRestart) {
  const std::string dir = temp_dir("restart");
  {
    ExperimentService service({dir, 64, 1});
    EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "miss");
  }
  ExperimentService service({dir, 64, 1});
  EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "hit-disk");
  EXPECT_EQ(field(parse_reply(service.handle_line(kChainProfileRun)), "cache"), "hit-memory");
}

TEST(ExperimentService, DefaultSamplesAndExplicitDefaultShareOneKey) {
  ExperimentService service({"", 64, 1});
  // fig6.2 crypto experiments default to 4 samples — cheap enough to run.
  const JsonValue first = parse_reply(
      service.handle_line(R"({"request": "run", "experiment": "fig6.2/rsa-like"})"));
  EXPECT_EQ(field(first, "status"), "ok");
  const JsonValue second = parse_reply(service.handle_line(
      R"({"request": "run", "experiment": "fig6.2/rsa-like", "samples": 4, "seed": 1})"));
  EXPECT_EQ(field(second, "cache"), "hit-memory");
}

TEST(ExperimentService, StrictRequestValidation) {
  ExperimentService service({"", 4, 1});
  expect_error_containing(service, "not json", "malformed request");
  expect_error_containing(service, "[1]", "must be a JSON object");
  expect_error_containing(service, R"({"experiment": "x"})", "request");
  expect_error_containing(service, R"({"request": "frobnicate"})", "unknown request");
  expect_error_containing(service, R"({"request": "run"})", "requires field 'experiment'");
  expect_error_containing(service, R"({"request": "run", "experiment": "no/such"})",
                          "unknown experiment");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": -1})",
      "non-negative integer");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "samples": 0})",
      "must be positive");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "eval_path": "simd"})",
      "eval_path");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig7.1/n64-k6", "widht": 64})",
      "unknown field 'widht'");
  expect_error_containing(
      service, R"({"request": "run", "experiment": "fig6.1/uniform-unsigned", "eval_path": "scalar"})",
      "chain-profile");
  expect_error_containing(service, R"({"request": "cache-stats", "experiment": "x"})",
                          "unknown field");
  expect_error_containing(service, R"({"request": "shutdown", "now": true})", "unknown field");
  // Validation failures never touch the cache.
  EXPECT_EQ(service.cache_stats().misses, 0u);
}

TEST(ExperimentService, ListAndDescribe) {
  ExperimentService service({"", 4, 1});
  const JsonValue list = parse_reply(service.handle_line(R"({"request": "list"})"));
  EXPECT_EQ(field(list, "status"), "ok");
  bool saw_table71 = false;
  for (const JsonValue& name : list.find("error_rate")->items()) {
    saw_table71 = saw_table71 || name.as_string() == "table7.1/n64";
  }
  EXPECT_TRUE(saw_table71);
  EXPECT_FALSE(list.find("chain_profile")->items().empty());

  const JsonValue filtered =
      parse_reply(service.handle_line(R"({"request": "list", "prefix": "fig6."})"));
  EXPECT_TRUE(filtered.find("error_rate")->items().empty());
  for (const JsonValue& name : filtered.find("chain_profile")->items()) {
    EXPECT_EQ(name.as_string().substr(0, 5), "fig6.");
  }

  const JsonValue describe = parse_reply(
      service.handle_line(R"({"request": "describe", "experiment": "table7.2/n64"})"));
  EXPECT_EQ(field(describe, "kind"), "error-rate");
  EXPECT_EQ(field(describe, "model"), "VLCSA 2");
  EXPECT_EQ(field(describe, "distribution"), "gaussian-twos-complement");
  std::uint64_t default_samples = 0;
  ASSERT_TRUE(describe.find("default_samples")->to_u64(default_samples));
  EXPECT_EQ(default_samples, 200000u);

  const JsonValue crypto = parse_reply(
      service.handle_line(R"({"request": "describe", "experiment": "fig6.2/rsa-like"})"));
  EXPECT_EQ(field(crypto, "kind"), "chain-profile");
  EXPECT_EQ(field(crypto, "workload"), "crypto");
}

TEST(ExperimentService, ShutdownReply) {
  ExperimentService service({"", 4, 1});
  const ExperimentService::Reply reply = service.handle_line(R"({"request": "shutdown"})");
  EXPECT_TRUE(reply.shutdown);
  EXPECT_EQ(field(parse_reply(reply), "status"), "ok");
  // Errors and normal requests never set the flag.
  EXPECT_FALSE(service.handle_line(R"({"request": "list"})").shutdown);
  EXPECT_FALSE(service.handle_line("garbage").shutdown);
}

TEST(ServeStdio, ConversationEndsOnShutdown) {
  ExperimentService service({"", 4, 1});
  std::istringstream in(
      "{\"request\": \"list\"}\n"
      "\n"  // blank lines tolerated
      "{\"request\": \"cache-stats\"}\n"
      "{\"request\": \"shutdown\"}\n"
      "{\"request\": \"list\"}\n");  // after shutdown: unread
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(in, out, service), 3u);
  // Three response lines, each valid JSON.
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(parse_json(line).ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(ExperimentService, ConcurrentIdenticalColdRequestsComputeOnce) {
  // Single-flight: N threads racing on the same cold key must trigger
  // exactly one computation (one store) — the rest are memory hits or
  // coalesced waiters, never independent re-samplings.
  ExperimentService service({"", 16, 1});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> caches(kThreads);
  std::vector<std::uint64_t> errors(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &caches, &errors, t] {
      const JsonValue response = parse_reply(service.handle_line(kErrorRateRun));
      caches[static_cast<std::size_t>(t)] = field(response, "cache");
      (void)response.find("record")->find("actual_errors")->to_u64(
          errors[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(service.cache_stats().stores, 1u);  // exactly one computation
  int miss_count = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(caches[t] == "miss" || caches[t] == "coalesced" || caches[t] == "hit-memory")
        << caches[t];
    miss_count += caches[t] == "miss" ? 1 : 0;
    EXPECT_EQ(errors[t], errors[0]);  // everyone saw the same record
  }
  EXPECT_EQ(miss_count, 1);  // exactly the leader of the cold generation
}

TEST(SocketServer, ShutdownCompletesWithAnotherConnectionOpen) {
  // Regression: a worker blocked in recv() on an idle connection must not
  // keep serve() from returning after another client requests shutdown.
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_shutdown_test.sock").string();
  ExperimentService service({"", 4, 1});
  SocketServer server(socket_path, service, /*workers=*/2);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  UnixClient idle;  // connects, sends nothing, stays open
  ASSERT_EQ(idle.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  std::string response;
  ASSERT_EQ(idle.roundtrip(R"({"request": "list"})", response), "");  // worker now owns it

  UnixClient requester;
  ASSERT_EQ(requester.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
  ASSERT_EQ(requester.roundtrip(R"({"request": "shutdown"})", response), "");
  EXPECT_EQ(field(parse_json(response).value, "status"), "ok");

  serving.join();  // must return despite the idle connection (hung pre-fix)
}

TEST(SocketServer, EndToEndOverUnixSocket) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "vlcsa_service_test.sock").string();
  ExperimentService service({"", 16, 1});
  SocketServer server(socket_path, service, /*workers=*/2);
  ASSERT_EQ(server.listen_or_error(), "");
  std::thread serving([&server] { EXPECT_EQ(server.serve(), ""); });

  {
    UnixClient client;
    ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
    std::string response;
    // Several requests over one connection.
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    JsonParse first = parse_json(response);
    ASSERT_TRUE(first.ok()) << response;
    EXPECT_EQ(field(first.value, "cache"), "miss");
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    JsonParse second = parse_json(response);
    ASSERT_TRUE(second.ok()) << response;
    EXPECT_EQ(field(second.value, "cache"), "hit-memory");
  }
  {
    // A second connection sees the same warm cache.
    UnixClient client;
    ASSERT_EQ(client.connect_or_error(socket_path, /*timeout_ms=*/2000), "");
    std::string response;
    ASSERT_EQ(client.roundtrip(kErrorRateRun, response), "");
    EXPECT_EQ(field(parse_json(response).value, "cache"), "hit-memory");
    ASSERT_EQ(client.roundtrip(R"({"request": "shutdown"})", response), "");
    EXPECT_EQ(field(parse_json(response).value, "status"), "ok");
  }
  serving.join();
}

TEST(ExperimentService, CacheStatsReportsDiskTierSizeAndCap) {
  const std::string dir = temp_dir("cap");
  ServiceConfig config;
  config.cache_dir = dir;
  config.memory_entries = 4;
  config.threads = 1;
  config.cache_max_bytes = 1 << 20;
  ExperimentService service(config);
  (void)parse_reply(service.handle_line(kErrorRateRun));

  const JsonValue response =
      parse_reply(service.handle_line(R"({"request": "cache-stats"})"));
  EXPECT_EQ(field(response, "status"), "ok");
  std::uint64_t value = 0;
  ASSERT_NE(response.find("disk_bytes"), nullptr);
  ASSERT_TRUE(response.find("disk_bytes")->to_u64(value));
  EXPECT_GT(value, 0u);  // the run's record is on disk and counted
  ASSERT_NE(response.find("disk_max_bytes"), nullptr);
  ASSERT_TRUE(response.find("disk_max_bytes")->to_u64(value));
  EXPECT_EQ(value, static_cast<std::uint64_t>(1 << 20));
  ASSERT_NE(response.find("disk_evictions"), nullptr);
  ASSERT_TRUE(response.find("disk_evictions")->to_u64(value));
  EXPECT_EQ(value, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vlcsa::service
