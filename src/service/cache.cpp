#include "service/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "harness/json.hpp"
#include "service/fleet.hpp"

namespace vlcsa::service {

namespace {

/// FNV-1a over the canonical key encoding: stable across runs (unlike
/// std::hash), so file names are reproducible for the CI smoke step.
std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Keeps [A-Za-z0-9.-] of an experiment name, maps everything else to '_',
/// so "table7.1/n64" files as "table7.1_n64-..." — readable in `ls`.
std::string sanitize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    out += keep ? c : '_';
  }
  return out;
}

}  // namespace

std::string cache_map_key(const CacheKey& key) {
  std::string map_key = key.experiment + "|" + std::to_string(key.samples) + "|" +
                        std::to_string(key.seed) + "|" + key.eval_path;
  // Appended only when set, so unversioned families keep their historical
  // map keys (and therefore their on-disk record file names) byte-for-byte.
  if (!key.stream_version.empty()) map_key += "|" + key.stream_version;
  return map_key;
}

bool record_matches_key(const std::string& record, const CacheKey& key) {
  const harness::JsonParse parse = harness::parse_json(record);
  if (!parse.ok() || parse.value.kind() != harness::JsonValue::Kind::kObject) return false;
  const harness::JsonValue* experiment = parse.value.find("experiment");
  const harness::JsonValue* samples = parse.value.find("samples");
  const harness::JsonValue* seed = parse.value.find("seed");
  const harness::JsonValue* eval_path = parse.value.find("eval_path");
  if (experiment == nullptr || experiment->kind() != harness::JsonValue::Kind::kString ||
      experiment->as_string() != key.experiment) {
    return false;
  }
  std::uint64_t value = 0;
  if (samples == nullptr || !samples->to_u64(value) || value != key.samples) return false;
  if (seed == nullptr || !seed->to_u64(value) || value != key.seed) return false;
  if (eval_path == nullptr || eval_path->kind() != harness::JsonValue::Kind::kString ||
      eval_path->as_string() != key.eval_path) {
    return false;
  }
  if (!key.stream_version.empty()) {
    // Versioned family: the record must declare the same stream version.
    // A record from before the family's stream change has no such field
    // and must read as a miss, never as a stale hit.
    const harness::JsonValue* stream = parse.value.find("stream_version");
    if (stream == nullptr || stream->kind() != harness::JsonValue::Kind::kString ||
        stream->as_string() != key.stream_version) {
      return false;
    }
  }
  return true;
}

ResultCache::ResultCache(std::string disk_dir, std::size_t memory_capacity,
                         std::uint64_t max_disk_bytes, int lease_stale_ms)
    : disk_dir_(std::move(disk_dir)),
      memory_capacity_(memory_capacity),
      max_disk_bytes_(max_disk_bytes),
      lease_stale_ms_(lease_stale_ms < 0 ? 0 : lease_stale_ms) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    // An uncreatable directory degrades every put/get to the memory tier;
    // reads/writes below handle the failure per file.
    const std::lock_guard<std::mutex> lock(disk_mutex_);
    fleet::DirLock dir_lock;
    [[maybe_unused]] const bool locked = dir_lock.acquire(dir_lock_path());
    // Crashed writers leave .tmp/.lease scratch behind; sweep what is
    // provably stale.  Fresh scratch belongs to a live replica mid-write —
    // deleting it would tear that replica's store — so it is kept.
    reap_stale_scratch_locked();
    if (max_disk_bytes_ != 0) {
      // A pre-populated directory may already exceed the cap (e.g. after a
      // restart with a smaller --cache-max-bytes).
      enforce_disk_cap_locked();
    }
  }
}

std::string ResultCache::dir_lock_path() const { return disk_dir_ + "/.vlcsa.lock"; }

void ResultCache::reap_stale_scratch_locked() {
  if (lease_stale_ms_ == 0) return;  // takeover disabled: never touch foreign scratch
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(disk_dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string extension = entry.path().extension().string();
    if (extension != ".tmp" && extension != ".lease") continue;
    const long long age = fleet::lease_age_ms(entry.path().string());
    if (age < 0 || age <= lease_stale_ms_) continue;
    std::error_code remove_ec;
    std::filesystem::remove(entry.path(), remove_ec);
  }
}

std::uint64_t ResultCache::disk_usage_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(disk_dir_, ec)) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".json") continue;
    const std::uintmax_t size = entry.file_size(ec);
    if (!ec) total += static_cast<std::uint64_t>(size);
  }
  return total;
}

void ResultCache::enforce_disk_cap_locked() {
  std::error_code ec;
  struct RecordFile {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::vector<RecordFile> records;
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(disk_dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string extension = entry.path().extension().string();
    if (extension == ".tmp" || extension == ".lease") {
      // Scratch from a crashed writer — but only provably-stale scratch: a
      // fresh .tmp/.lease may be another replica's store in flight (this
      // walk holds the dir flock, which writers take only around the final
      // rename, not around the slow record write).
      const long long age = fleet::lease_age_ms(entry.path().string());
      if (lease_stale_ms_ > 0 && age > lease_stale_ms_) {
        std::error_code remove_ec;
        std::filesystem::remove(entry.path(), remove_ec);
      }
      continue;
    }
    if (extension != ".json") continue;
    // Per-field error codes: a failed mtime must not be masked by a
    // succeeding size query (or vice versa) — a record with indeterminate
    // age would sort as oldest and be evicted ahead of genuinely old ones.
    std::error_code mtime_ec, size_ec;
    RecordFile record{entry.path(), entry.last_write_time(mtime_ec),
                      static_cast<std::uint64_t>(entry.file_size(size_ec))};
    if (mtime_ec || size_ec) continue;
    total += record.size;
    records.push_back(std::move(record));
  }
  if (total <= max_disk_bytes_) {
    disk_bytes_estimate_ = total;
    return;
  }
  std::sort(records.begin(), records.end(),
            [](const RecordFile& a, const RecordFile& b) { return a.mtime < b.mtime; });
  std::uint64_t evicted = 0;
  for (const auto& record : records) {
    if (total <= max_disk_bytes_) break;
    std::filesystem::remove(record.path, ec);
    if (ec) continue;
    total -= record.size;
    ++evicted;
  }
  disk_bytes_estimate_ = total;
  if (evicted != 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.disk_evictions += evicted;
  }
}

std::string ResultCache::file_path(const CacheKey& key) const {
  const std::string map_key = cache_map_key(key);
  return disk_dir_ + "/" + sanitize(key.experiment) + "-s" + std::to_string(key.samples) +
         "-seed" + std::to_string(key.seed) + "-" + sanitize(key.eval_path) + "-" +
         hex64(fnv1a64(map_key)) + ".json";
}

void ResultCache::promote_locked(const std::string& map_key, const std::string& record) {
  if (memory_capacity_ == 0) return;
  const auto it = index_.find(map_key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = record;
    return;
  }
  lru_.emplace_front(map_key, record);
  index_[map_key] = lru_.begin();
  if (lru_.size() > memory_capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Lookup ResultCache::get(const CacheKey& key) {
  const std::string map_key = cache_map_key(key);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(map_key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.memory_hits;
      return {Tier::kMemory, it->second->second};
    }
  }
  if (!disk_dir_.empty()) {
    std::ifstream in(file_path(key), std::ios::binary);
    if (in) {
      std::ostringstream content;
      content << in.rdbuf();
      std::string record = content.str();
      // File content is record + '\n'; strip exactly the framing newline.
      if (!record.empty() && record.back() == '\n') record.pop_back();
      // Fault site: hand validation a half record, as if the read raced a
      // non-atomic writer — it must degrade to a miss, never a wrong hit.
      fleet::fault::maybe_tear("torn-read", record);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (record_matches_key(record, key)) {
        promote_locked(map_key, record);
        ++stats_.disk_hits;
        return {Tier::kDisk, std::move(record)};
      }
      ++stats_.invalid_disk_records;
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return {Tier::kMiss, {}};
}

void ResultCache::put(const CacheKey& key, const std::string& record) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    promote_locked(cache_map_key(key), record);
    ++stats_.stores;
  }
  if (disk_dir_.empty()) return;
  // Write-then-rename so a concurrent reader (or a crash) never sees a
  // truncated record — it would be rejected by validation anyway, but a
  // rename keeps the disk tier hit rate clean.  The .tmp name carries the
  // writer's pid: two replicas storing the same key write disjoint scratch
  // files, and each rename is atomic (last one wins with byte-identical
  // content — records are pure functions of the key).
  const std::string path = file_path(key);
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  const std::lock_guard<std::mutex> disk_lock(disk_mutex_);
  std::error_code ec;
  bool wrote = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable dir: memory tier still serves
    out << record << '\n';
    wrote = out.good();
  }
  if (!wrote) {
    // Don't strand a partial .tmp (it would never count against the byte
    // cap and never be evicted).
    std::filesystem::remove(tmp, ec);
    return;
  }
  // Fault sites for the fleet tests: dawdle with the .tmp written (so a
  // kill -9 lands mid-store) or crash outright before the rename.
  fleet::fault::maybe_sleep("slow-write", 1000);
  fleet::fault::maybe_crash("crash-before-rename");
  // The rename and any eviction walk run under the cross-process dir lock:
  // concurrent replicas never walk (and double-count evictions) at once,
  // and a walk never races a peer's rename.  An unlockable dir degrades to
  // the single-process guarantee (rename is atomic regardless).
  fleet::DirLock dir_lock;
  [[maybe_unused]] const bool locked = dir_lock.acquire(dir_lock_path());
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  if (max_disk_bytes_ != 0) {
    // Running estimate keeps the common under-cap store O(1); only when it
    // crosses the cap does a directory walk run (and resync the estimate,
    // so key overwrites or external deletions never cause drift to stick).
    disk_bytes_estimate_ += record.size() + 1;  // + framing '\n'
    if (disk_bytes_estimate_ > max_disk_bytes_) enforce_disk_cap_locked();
  }
}

std::string ResultCache::lease_path(const CacheKey& key) const {
  return file_path(key) + ".lease";
}

fleet::ComputeLease ResultCache::try_acquire_lease(const CacheKey& key) {
  fleet::ComputeLease lease;
  if (disk_dir_.empty()) return lease;  // kDisabled: no shared tier to guard
  lease.try_acquire(lease_path(key), lease_stale_ms_);
  if (lease.took_over()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lease_takeovers;
  }
  return lease;
}

void ResultCache::record_lease_wait() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lease_waits;
}

void ResultCache::record_coalesced_hit() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.coalesced_hits;
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.memory_entries = lru_.size();
  }
  if (!disk_dir_.empty()) out.disk_bytes = disk_usage_bytes();
  return out;
}

}  // namespace vlcsa::service
