#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vlcsa::harness {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.0001), "0.01%");
  EXPECT_EQ(fmt_pct(0.2501), "25.01%");
  EXPECT_EQ(fmt_pct(0.5, 0), "50%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(1.005, 2), "1.00");  // round-to-even banker-ish via printf
  EXPECT_EQ(fmt_fixed(2.5, 1), "2.5");
}

TEST(Format, DeltaPercent) {
  EXPECT_EQ(fmt_delta_pct(110.0, 100.0), "+10.0%");
  EXPECT_EQ(fmt_delta_pct(81.0, 100.0), "-19.0%");
  EXPECT_EQ(fmt_delta_pct(1.0, 0.0), "n/a");
}

TEST(Format, Scientific) { EXPECT_EQ(fmt_sci(0.000114), "1.14e-04"); }

TEST(BenchArgs, DefaultsAndOverrides) {
  const char* argv1[] = {"bench"};
  auto args = BenchArgs::parse(1, const_cast<char**>(argv1), 1000);
  EXPECT_EQ(args.samples, 1000u);
  EXPECT_EQ(args.seed, 1u);

  const char* argv2[] = {"bench", "--samples=5", "--seed=77"};
  args = BenchArgs::parse(3, const_cast<char**>(argv2), 1000);
  EXPECT_EQ(args.samples, 5u);
  EXPECT_EQ(args.seed, 77u);
}

TEST(BenchArgs, UnknownArgumentThrows) {
  const char* argv[] = {"bench", "--frobnicate"};
  EXPECT_THROW(BenchArgs::parse(2, const_cast<char**>(argv), 1), std::invalid_argument);
}

TEST(BenchArgs, ToleratesGoogleBenchmarkFlags) {
  const char* argv[] = {"bench", "--benchmark_filter=all"};
  EXPECT_NO_THROW(BenchArgs::parse(2, const_cast<char**>(argv), 1));
}

TEST(Banner, ContainsArtifactAndDescription) {
  std::ostringstream os;
  print_banner(os, "Table 7.1", "error rates");
  EXPECT_NE(os.str().find("Table 7.1"), std::string::npos);
  EXPECT_NE(os.str().find("error rates"), std::string::npos);
}

}  // namespace
}  // namespace vlcsa::harness
