// Fig 6.2 — carry-chain length statistics from a cryptographic workload.
//
// The paper reproduces Cilardo [6]'s profile of RSA / ECC / Diffie-Hellman
// benchmark traces; those traces are proprietary, so this bench runs our
// instrumented prime-field workload substitute (see DESIGN.md): real modular
// arithmetic (16-bit residues on a 32-bit datapath, as a bignum word-slice
// would execute) with every datapath addition recorded.  The property the
// figure exists to show — a *bimodal* distribution with a significant mass
// of near-datapath-width chains — emerges from the two's-complement
// subtractions of modular reduction.

#include <iostream>

#include "arith/workload.hpp"
#include "bench_util.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 4);
  harness::print_banner(std::cout, "Figure 6.2",
                        "Carry-chain statistics from instrumented cryptographic "
                        "workloads (16-bit prime field on a 32-bit datapath).");

  for (const auto kind : {arith::CryptoKind::kRsaLike, arith::CryptoKind::kDiffieHellmanLike,
                          arith::CryptoKind::kEcFieldLike}) {
    arith::CryptoWorkloadConfig config;
    config.width = 32;
    config.field_bits = 16;
    config.kind = kind;
    config.operations = static_cast<int>(args.samples);
    config.exponent_bits = 24;
    config.seed = args.seed;

    arith::CarryChainProfiler profiler(32, arith::ChainMetric::kAllChains);
    const auto additions = run_crypto_workload(config, profiler);

    std::cout << "---- workload: " << to_string(kind) << " (" << additions
              << " datapath additions) ----\n";
    bench::print_chain_histogram(profiler);
    std::cout << "fraction of chains reaching >= half the datapath: "
              << harness::fmt_pct(profiler.fraction_at_least(16), 2) << "\n\n";
  }
  std::cout << "Expected shape: short-chain mass plus a second mode near the datapath\n"
               "width (sign-extension chains from modular subtraction) — the pattern\n"
               "2's-complement Gaussian inputs approximate (Ch. 6.3).\n";
  return 0;
}
