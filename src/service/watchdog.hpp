#pragma once
// Deadline watchdog for per-request timeouts (service.hpp): one background
// thread tracks the armed deadlines of all in-flight runs and flips each
// run's cancellation token (engine.hpp RunOptions::cancel) when its deadline
// passes.  The engine's workers observe the token at shard (= block)
// granularity and abort via RunCancelled, so a timed-out run never produces
// a result — and therefore never writes a cache record.
//
// The thread is started lazily on the first arm() (a service that never sees
// a timeout-bearing request carries no extra thread) and joined by the
// destructor.  arm()/disarm() are thread-safe; the caller must disarm before
// destroying the token it armed.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace vlcsa::service {

class DeadlineWatchdog {
 public:
  using Clock = std::chrono::steady_clock;
  using Id = std::uint64_t;

  DeadlineWatchdog() = default;
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  /// Registers `token` to be set to true at `deadline` (unless disarmed
  /// first).  Returns the id to pass to disarm().
  [[nodiscard]] Id arm(Clock::time_point deadline, std::atomic<bool>* token);

  /// Unregisters an armed deadline.  Safe to call after the deadline fired
  /// (a no-op then); must be called before the token's storage dies.
  void disarm(Id id);

 private:
  struct Entry {
    Clock::time_point deadline;
    std::atomic<bool>* token = nullptr;
  };

  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Id, Entry> armed_;
  Id next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;  // started lazily by the first arm()
};

}  // namespace vlcsa::service
