// vlcsa_serve — the experiment service daemon (src/service): a long-running
// front end over the experiment registry with a two-tier result cache, so
// repeated table/figure reproductions and wide adder-comparison sweeps stop
// paying cold-start and re-sampling costs.  Speaks newline-delimited JSON
// over a Unix domain socket (or stdin/stdout with --stdio); protocol
// reference in DESIGN.md.
//
//   $ ./build/examples/vlcsa_serve --socket=/tmp/vlcsa.sock --cache-dir=.vlcsa-cache &
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=run
//         --experiment=table7.1/n64 --samples=200000
//   $ echo '{"request": "run", "experiment": "table7.1/n64"}'
//         | ./build/examples/vlcsa_serve --stdio --cache-dir=.vlcsa-cache

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace vlcsa;

namespace {

void print_usage() {
  std::cout << "usage: vlcsa_serve [--socket=PATH | --stdio] [--cache-dir=DIR]\n"
               "                   [--cache-max-bytes=N] [--memory-entries=N]\n"
               "                   [--threads=T] [--workers=N]\n"
               "  --socket           Unix domain socket path to listen on\n"
               "  --stdio            serve stdin/stdout instead of a socket (one-shot\n"
               "                     pipelines and tests)\n"
               "  --cache-dir        on-disk result cache directory (created if absent;\n"
               "                     default: no disk tier)\n"
               "  --cache-max-bytes  disk-tier byte cap: stores evict the oldest record\n"
               "                     files until the tier fits (default 0 = unbounded)\n"
               "  --memory-entries   in-memory LRU capacity (default 64; 0 disables)\n"
               "  --threads          engine threads per experiment run, 0 = all\n"
               "                     hardware threads (default 0)\n"
               "  --workers          warm connection-worker pool size (default 2)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  bool show_help = false;
  service::ServiceConfig config;
  int memory_entries = 64;
  int workers = 2;
  bool workers_given = false;

  const std::vector<harness::ValueFlag> flags = {
      {"--socket",
       [&](const std::string& value) {
         if (value.empty()) return false;
         socket_path = value;
         return true;
       }},
      {"--cache-dir",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.cache_dir = value;
         return true;
       }},
      {"--cache-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, config.cache_max_bytes);
       }},
      {"--memory-entries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, memory_entries);
       }},
      {"--threads",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.threads);
       }},
      {"--workers",
       [&](const std::string& value) {
         workers_given = true;
         return harness::parse_nonnegative_int(value, workers) && workers > 0;
       }},
  };

  // --stdio and --help take no value, so they sit outside the ValueFlag set.
  std::vector<const char*> value_args;
  value_args.push_back(argc > 0 ? argv[0] : "vlcsa_serve");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--help" || arg == "-h") {
      show_help = true;
    } else {
      value_args.push_back(argv[i]);
    }
  }
  if (show_help) {
    print_usage();
    return 0;
  }
  if (const std::string error = harness::parse_value_flags(
          static_cast<int>(value_args.size()), value_args.data(), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  if (!stdio && socket_path.empty()) {
    std::cerr << "error: exactly one of --socket=PATH or --stdio is required\n";
    print_usage();
    return 2;
  }
  if (stdio && !socket_path.empty()) {
    std::cerr << "error: --socket and --stdio are mutually exclusive\n";
    print_usage();
    return 2;
  }
  if (config.cache_max_bytes != 0 && config.cache_dir.empty()) {
    // A silently dead cap would suggest bounded disk usage that isn't there.
    std::cerr << "error: --cache-max-bytes requires --cache-dir\n";
    print_usage();
    return 2;
  }
  if (stdio && workers_given) {
    // Stdio serving is one conversation on one stream; a silently dead
    // --workers would suggest parallelism that isn't there.
    std::cerr << "error: --workers only applies to socket mode\n";
    print_usage();
    return 2;
  }
  config.memory_entries = static_cast<std::size_t>(memory_entries);

  service::ExperimentService service(config);
  if (stdio) {
    service::serve_stdio(std::cin, std::cout, service);
    return 0;
  }

  service::SocketServer server(socket_path, service, workers);
  if (const std::string error = server.listen_or_error(); !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cerr << "vlcsa_serve: listening on " << socket_path
            << (config.cache_dir.empty() ? " (memory cache only)"
                                         : ", cache dir " + config.cache_dir)
            << "\n";
  if (const std::string error = server.serve(); !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  return 0;
}
