#pragma once
// Unix-domain-socket transport for the experiment service: a long-running
// daemon loop (SocketServer, used by examples/vlcsa_serve.cpp) and the
// matching client connection (UnixClient, used by examples/vlcsa_client.cpp
// and the tests).  Framing is the same newline-delimited JSON as the --stdio
// transport: one request object per line in, one response object per line
// out, any number of requests per connection.
//
// The server keeps a warm pool of worker threads: accepted connections queue
// onto the pool, each worker converses with its connection until the peer
// hangs up, and experiment runs inside a request reuse the sharded engine
// (service.hpp).  A "shutdown" request answers the requester, then stops the
// accept loop and drains the pool.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace vlcsa::service {

class SocketServer {
 public:
  /// `workers` = size of the warm connection pool (clamped to >= 1).
  SocketServer(std::string socket_path, ExperimentService& service, int workers = 2);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on the socket path (unlinking a stale socket first).
  /// Returns "" on success, else the error.
  [[nodiscard]] std::string listen_or_error();

  /// Runs the accept loop until a shutdown request (or request_stop) and
  /// drains the worker pool.  Returns "" on a clean stop, else the error.
  [[nodiscard]] std::string serve();

  /// Thread-safe external stop (e.g. from a signal handler's helper thread).
  void request_stop();

  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

 private:
  void worker_loop();
  void handle_connection(int fd);

  std::string socket_path_;
  ExperimentService& service_;
  int workers_;
  int listen_fd_ = -1;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;     // accepted fds awaiting a worker
  std::vector<int> active_;     // fds currently conversing with a worker
  bool stopping_ = false;
};

/// One client connection speaking the line protocol.
class UnixClient {
 public:
  UnixClient() = default;
  ~UnixClient();

  UnixClient(const UnixClient&) = delete;
  UnixClient& operator=(const UnixClient&) = delete;

  /// Connects, retrying until `timeout_ms` elapses (covers the daemon's
  /// startup race in scripts: start vlcsa_serve &, connect immediately).
  /// Returns "" on success, else the error.
  [[nodiscard]] std::string connect_or_error(const std::string& socket_path,
                                             int timeout_ms = 0);

  /// Sends one request line and reads one response line (without trailing
  /// newline) into `response`.  Returns "" on success, else the error.
  [[nodiscard]] std::string roundtrip(const std::string& request_line, std::string& response);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last complete line
};

}  // namespace vlcsa::service
