#include "arith/carry_chain.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace vlcsa::arith {
namespace {

ApInt bits8(const std::string& msb_first) { return ApInt::from_binary(8, msb_first); }

TEST(CarryChainLengths, NoGeneratesNoChains) {
  // p everywhere (a ^ b = 1, a & b = 0): no chain ever starts.
  const auto lengths = carry_chain_lengths(bits8("11111111"), bits8("00000000"));
  EXPECT_TRUE(lengths.empty());
}

TEST(CarryChainLengths, SingleGenerateNoPropagation) {
  // g at bit 0 only, kill above: one chain of length 1.
  const auto lengths = carry_chain_lengths(bits8("00000001"), bits8("00000001"));
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 1);
}

TEST(CarryChainLengths, GenerateThenPropagateRun) {
  // a = 00011101, b = 00000111 (MSB first):
  //  bit0: 1,1 -> g   chain starts
  //  bit1: 0,1 -> p   chain extends
  //  bit2: 1,1 -> g   chain absorbed (length 2); a new chain starts here
  //  bit3: 1,0 -> p   extends
  //  bit4: 1,0 -> p   extends
  //  bit5..7: 0,0 -> k  absorbed (length 3)
  const auto lengths = carry_chain_lengths(bits8("00011101"), bits8("00000111"));
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 2);
  EXPECT_EQ(lengths[1], 3);
}

TEST(CarryChainLengths, DefinitionIsOriginPlusPropagateRun) {
  // Explicit: g at bit 2, p at bits 3,4,5, k at 6.
  // a = 00111100? Build directly from p/g masks instead:
  //   a = g | p, b = g  gives a&b = g, a^b = p  (when g and p are disjoint).
  ApInt g(16), p(16);
  g.set_bit(2, true);
  p.set_bit(3, true);
  p.set_bit(4, true);
  p.set_bit(5, true);
  const ApInt a = g | p;
  const ApInt b = g;
  const auto lengths = carry_chain_lengths(a, b);
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 4);  // origin + 3 propagating positions
  EXPECT_EQ(longest_carry_chain(a, b), 4);
}

TEST(CarryChainLengths, BackToBackGenerates) {
  ApInt g(8);
  g.set_bit(1, true);
  g.set_bit(2, true);
  const auto lengths = carry_chain_lengths(g, g);  // a = b = g pattern
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(CarryChainLengths, ChainEndsAtWidth) {
  ApInt g(8), p(8);
  g.set_bit(5, true);
  p.set_bit(6, true);
  p.set_bit(7, true);
  const auto lengths = carry_chain_lengths(g | p, g);
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_EQ(lengths[0], 3);
}

TEST(CarryChainLengths, SignExtensionChainSpansWholeAdder) {
  // Small positive + small negative with positive result: the classic
  // VLCSA 2 motivator.  a = 7, b = -3 in 32-bit two's complement.
  // Bits: g@0, p@1, g@2, then p@3..p@31 (sign extension of b), so the long
  // chain starts at bit 2 and covers 30 positions.
  const auto a = ApInt::from_i64(32, 7);
  const auto b = ApInt::from_i64(32, -3);
  EXPECT_EQ(longest_carry_chain(a, b), 30);
}

TEST(CarryChainProfiler, RejectsBadWidth) {
  EXPECT_THROW(CarryChainProfiler(0), std::invalid_argument);
}

TEST(CarryChainProfiler, CountsAndFractionsAreConsistent) {
  CarryChainProfiler prof(16, ChainMetric::kAllChains);
  vlcsa::arith::BlockRng rng(5);
  for (int i = 0; i < 1000; ++i) {
    prof.record(ApInt::random(16, rng), ApInt::random(16, rng));
  }
  EXPECT_EQ(prof.additions(), 1000u);
  double total_fraction = 0.0;
  std::uint64_t total_count = 0;
  for (int l = 0; l <= 16; ++l) {
    total_fraction += prof.fraction(l);
    total_count += prof.counts()[static_cast<std::size_t>(l)];
  }
  EXPECT_EQ(total_count, prof.total());
  EXPECT_NEAR(total_fraction, 1.0, 1e-12);
  EXPECT_NEAR(prof.fraction_at_least(0), 1.0, 1e-12);
  EXPECT_GE(prof.fraction_at_least(1), prof.fraction_at_least(2));
}

TEST(CarryChainProfiler, UniformInputsMatchGeometricLaw) {
  // For uniform bits: P(chain length = L | chain) = 2^-(L-1) * 1/2 ... the
  // conditional run-length law.  Check the ratio of consecutive buckets ~ 2.
  CarryChainProfiler prof(32, ChainMetric::kAllChains);
  vlcsa::arith::BlockRng rng(17);
  for (int i = 0; i < 200000; ++i) {
    prof.record(ApInt::random(32, rng), ApInt::random(32, rng));
  }
  const double f1 = prof.fraction(1);
  const double f2 = prof.fraction(2);
  const double f3 = prof.fraction(3);
  EXPECT_NEAR(f1 / f2, 2.0, 0.15);
  EXPECT_NEAR(f2 / f3, 2.0, 0.25);
}

TEST(CarryChainProfiler, LongestMetricRecordsOnePerAddition) {
  CarryChainProfiler prof(16, ChainMetric::kLongestPerAdd);
  vlcsa::arith::BlockRng rng(7);
  for (int i = 0; i < 500; ++i) {
    prof.record(ApInt::random(16, rng), ApInt::random(16, rng));
  }
  EXPECT_EQ(prof.total(), 500u);
  EXPECT_EQ(prof.additions(), 500u);
}

TEST(CarryChainProfiler, LongestMetricMeanIsLogarithmic) {
  // Classic result: average longest chain in n-bit uniform addition is
  // O(log n); for n = 64 it sits in the mid-single digits.
  CarryChainProfiler prof(64, ChainMetric::kLongestPerAdd);
  vlcsa::arith::BlockRng rng(23);
  for (int i = 0; i < 50000; ++i) {
    prof.record(ApInt::random(64, rng), ApInt::random(64, rng));
  }
  EXPECT_GT(prof.mean_length(), 3.0);
  EXPECT_LT(prof.mean_length(), 9.0);
}

TEST(CarryChainProfiler, RecordLengthsClampsToWidth) {
  CarryChainProfiler prof(8, ChainMetric::kAllChains);
  prof.record_lengths({100});
  EXPECT_EQ(prof.counts()[8], 1u);
}

}  // namespace
}  // namespace vlcsa::arith
