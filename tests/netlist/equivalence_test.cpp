#include "netlist/equivalence.hpp"

#include <gtest/gtest.h>

#include <random>

#include "adders/adders.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"

namespace vlcsa::netlist {
namespace {

TEST(Equivalence, IdenticalNetlistsAreEquivalent) {
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kRipple, 8);
  const auto result = prove_equivalent(nl, nl);
  EXPECT_TRUE(result.equivalent());
  EXPECT_EQ(result.outputs_compared, 9u);  // 8 sums + cout
}

class AdderEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<adders::AdderKind, int>> {};

TEST_P(AdderEquivalenceTest, FormallyEqualsRipple) {
  const auto [kind, width] = GetParam();
  const auto reference = adders::build_adder_netlist(adders::AdderKind::kRipple, width);
  const auto candidate = adders::build_adder_netlist(kind, width);
  const auto result = prove_equivalent(candidate, reference);
  EXPECT_TRUE(result.equivalent())
      << to_string(kind) << " width " << width << " differs at " << result.mismatch_output;
}

TEST_P(AdderEquivalenceTest, OptimizedFormallyEqualsUnoptimized) {
  const auto [kind, width] = GetParam();
  const auto raw = adders::build_adder_netlist(kind, width);
  const auto result = prove_equivalent(optimize(raw), raw);
  EXPECT_TRUE(result.equivalent()) << to_string(kind) << " width " << width;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndWidths, AdderEquivalenceTest,
    ::testing::Combine(::testing::Values(adders::AdderKind::kCarrySelect,
                                         adders::AdderKind::kCarrySkip,
                                         adders::AdderKind::kKoggeStone,
                                         adders::AdderKind::kBrentKung,
                                         adders::AdderKind::kSklansky,
                                         adders::AdderKind::kHanCarlson,
                                         adders::AdderKind::kHybridKsCarrySelect),
                       ::testing::Values(7, 16, 32, 64)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(Equivalence, DetectsInjectedBug) {
  // Same half adder, but the "buggy" one swaps XOR for OR on the sum.
  Netlist good("g"), bad("b");
  {
    const Signal a = good.add_input("a");
    const Signal b2 = good.add_input("b");
    good.add_output("s", good.xor_(a, b2));
  }
  {
    const Signal a = bad.add_input("a");
    const Signal b2 = bad.add_input("b");
    bad.add_output("s", bad.or_(a, b2));
  }
  const auto result = prove_equivalent(good, bad);
  ASSERT_EQ(result.verdict, Verdict::kNotEquivalent);
  EXPECT_EQ(result.mismatch_output, "s");
  // The counterexample must actually distinguish the two netlists.
  ASSERT_EQ(result.counterexample.size(), 2u);
  Simulator sg(good), sb(bad);
  for (const auto& [name, value] : result.counterexample) {
    sg.set_input(name, value ? ~std::uint64_t{0} : 0);
    sb.set_input(name, value ? ~std::uint64_t{0} : 0);
  }
  sg.run();
  sb.run();
  EXPECT_NE(sg.output("s") & 1, sb.output("s") & 1);
}

TEST(Equivalence, CounterexampleOnWideAdder) {
  // A 16-bit adder with one sum bit sabotaged: the witness must set up the
  // exact carry pattern that exposes it.
  auto good = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 16);
  Netlist bad = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 16);
  // Rebuild "bad" with sum[7] inverted.
  Netlist sabotaged("bad");
  {
    std::vector<Signal> map(bad.num_gates());
    std::size_t in_idx = 0;
    for (std::uint32_t i = 0; i < bad.num_gates(); ++i) {
      const Gate& g = bad.gates()[i];
      if (g.kind == GateKind::kInput) {
        map[i] = sabotaged.add_input(bad.inputs()[in_idx++].name);
      } else if (g.kind == GateKind::kConst0) {
        map[i] = sabotaged.constant(false);
      } else if (g.kind == GateKind::kConst1) {
        map[i] = sabotaged.constant(true);
      } else {
        map[i] = sabotaged.make_gate(g.kind, g.fanin[0].valid() ? map[g.fanin[0].id] : Signal{},
                                     g.fanin[1].valid() ? map[g.fanin[1].id] : Signal{},
                                     g.fanin[2].valid() ? map[g.fanin[2].id] : Signal{});
      }
    }
    for (const auto& port : bad.outputs()) {
      const Signal s = port.name == "sum[7]" ? sabotaged.not_(map[port.signal.id])
                                             : map[port.signal.id];
      sabotaged.add_output(port.name, s);
    }
  }
  const auto result = prove_equivalent(sabotaged, good);
  ASSERT_EQ(result.verdict, Verdict::kNotEquivalent);
  EXPECT_EQ(result.mismatch_output, "sum[7]");
}

TEST(Equivalence, OutputMapComparesRenamedBanks) {
  // y2 == not(not(y)) under a name map.
  Netlist a("a"), b("b");
  {
    const Signal x = a.add_input("x");
    a.add_output("inv", a.not_(x));
  }
  {
    const Signal x = b.add_input("x");
    b.add_output("negated", b.not_(b.not_(b.not_(x))));
  }
  const auto result = prove_equivalent(a, b, {{"inv", "negated"}});
  EXPECT_TRUE(result.equivalent());
  EXPECT_EQ(result.outputs_compared, 1u);
}

TEST(Equivalence, MismatchedInputSetsThrow) {
  Netlist a("a"), b("b");
  a.add_output("y", a.add_input("x"));
  b.add_output("y", b.add_input("z"));
  EXPECT_THROW((void)prove_equivalent(a, b), std::invalid_argument);
}

TEST(Equivalence, NoComparableOutputsThrow) {
  Netlist a("a"), b("b");
  a.add_output("p", a.add_input("x"));
  b.add_output("q", b.add_input("x"));
  EXPECT_THROW((void)prove_equivalent(a, b), std::invalid_argument);
}

TEST(Equivalence, NodeLimitReportsResourceVerdict) {
  // A 64-bit multiplier-free stress: adders stay small, so force the limit
  // tiny to exercise the path.
  const auto nl = adders::build_adder_netlist(adders::AdderKind::kKoggeStone, 32);
  const auto result = prove_equivalent(nl, nl, {}, /*node_limit=*/16);
  EXPECT_EQ(result.verdict, Verdict::kResourceLimit);
}

TEST(Equivalence, RandomOptimizedNetlistsProveEquivalent) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    Netlist nl;
    std::vector<Signal> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
    pool.push_back(nl.constant(false));
    pool.push_back(nl.constant(true));
    for (int i = 0; i < 120; ++i) {
      const auto pick = [&] { return pool[rng() % pool.size()]; };
      switch (rng() % 6) {
        case 0: pool.push_back(nl.and_(pick(), pick())); break;
        case 1: pool.push_back(nl.or_(pick(), pick())); break;
        case 2: pool.push_back(nl.xor_(pick(), pick())); break;
        case 3: pool.push_back(nl.nand_(pick(), pick())); break;
        case 4: pool.push_back(nl.not_(pick())); break;
        default: pool.push_back(nl.mux(pick(), pick(), pick())); break;
      }
    }
    for (int o = 0; o < 4; ++o) {
      nl.add_output("y" + std::to_string(o), pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
    }
    const auto result = prove_equivalent(optimize(nl), nl);
    EXPECT_TRUE(result.equivalent()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace vlcsa::netlist
