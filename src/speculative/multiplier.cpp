#include "speculative/multiplier.hpp"

#include <stdexcept>

namespace vlcsa::spec {

MultiplierResult SpeculativeMultiplier::multiply(const ApInt& a, const ApInt& b) const {
  if (a.width() != width_ || b.width() != width_) {
    throw std::invalid_argument("SpeculativeMultiplier: operand width mismatch");
  }
  // Partial products: shifted copies of a gated by the bits of b.
  std::vector<ApInt> partials;
  partials.reserve(static_cast<std::size_t>(width_));
  const ApInt wide_a = a.zext(2 * width_);
  for (int j = 0; j < width_; ++j) {
    if (b.bit(j)) partials.push_back(wide_a.shl(j));
  }
  const auto result = adder_.add(partials);
  MultiplierResult out;
  out.product = result.sum;
  out.cycles = result.cycles;
  out.stalled = result.stalled;
  return out;
}

}  // namespace vlcsa::spec
