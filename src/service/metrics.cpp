#include "service/metrics.hpp"

#include <algorithm>

namespace vlcsa::service {

namespace {

/// The quantile value: the upper bound (seconds) of the first bucket whose
/// cumulative count reaches fraction `q` of `total`.  The overflow bucket
/// reports the largest finite bound (latency_max_seconds is the exact tail).
template <std::size_t N>
double bucket_quantile(const std::array<std::uint64_t, N>& buckets,
                       const std::array<std::uint64_t, N - 1>& bounds_us, std::uint64_t total,
                       double q) {
  if (total == 0) return 0.0;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const std::size_t bound = std::min(i, bounds_us.size() - 1);
      return static_cast<double>(bounds_us[bound]) * 1e-6;
    }
  }
  return static_cast<double>(bounds_us.back()) * 1e-6;
}

}  // namespace

ServiceMetrics::ServiceMetrics()
    : start_(std::chrono::steady_clock::now()), by_type_(request_types().size(), 0) {}

const std::vector<std::string>& ServiceMetrics::request_types() {
  // Keep in sync with ExperimentService's dispatch table (service.cpp); the
  // protocol-doc test pins the dispatch table against DESIGN.md and the
  // metrics test pins this list against the dispatch table.
  static const std::vector<std::string> kTypes = {
      "run", "run-batch", "list", "describe", "cache-stats", "metrics", "shutdown", "invalid"};
  return kTypes;
}

ServiceMetrics::InFlight::InFlight(ServiceMetrics& metrics) : metrics_(metrics) {
  const std::lock_guard<std::mutex> lock(metrics_.mutex_);
  ++metrics_.in_flight_;
}

ServiceMetrics::InFlight::~InFlight() {
  const std::lock_guard<std::mutex> lock(metrics_.mutex_);
  --metrics_.in_flight_;
}

void ServiceMetrics::record_request(const std::string& type, bool ok, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++requests_total_;
  ++(ok ? ok_total_ : error_total_);
  const auto& types = request_types();
  std::size_t index = types.size() - 1;  // "invalid" is the fallback slot
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i] == type) {
      index = i;
      break;
    }
  }
  ++by_type_[index];

  latency_max_seconds_ = std::max(latency_max_seconds_, seconds);
  const double us = seconds * 1e6;
  std::size_t bucket = kBucketBoundsUs.size();  // overflow
  for (std::size_t i = 0; i < kBucketBoundsUs.size(); ++i) {
    if (us <= static_cast<double>(kBucketBoundsUs[i])) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
}

void ServiceMetrics::record_timeout() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++timeouts_;
}

void ServiceMetrics::record_batch_element() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++batch_elements_;
}

void ServiceMetrics::record_rejected_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_connections_;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.requests_total = requests_total_;
  out.ok_total = ok_total_;
  out.error_total = error_total_;
  out.timeouts = timeouts_;
  out.batch_elements = batch_elements_;
  out.rejected_connections = rejected_connections_;
  out.in_flight = in_flight_;
  out.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  out.qps = out.uptime_seconds > 0.0
                ? static_cast<double>(requests_total_) / out.uptime_seconds
                : 0.0;
  out.latency_p50_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.50);
  out.latency_p95_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.95);
  out.latency_p99_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.99);
  out.latency_max_seconds = latency_max_seconds_;
  const auto& types = request_types();
  out.by_type.reserve(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    out.by_type.push_back({types[i], by_type_[i]});
  }
  return out;
}

}  // namespace vlcsa::service
