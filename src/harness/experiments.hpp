#pragma once
// Experiment registry: every Monte Carlo experiment the paper's tables and
// figures need, as named (adder variant × width × window × operand
// distribution) configurations.  Bench binaries and the adder_explorer
// example look experiments up here instead of hand-rolling sampling loops;
// new workloads are added by appending a registration, and immediately
// become runnable from every front end.
//
// Naming convention: "<artifact>/<point>", e.g. "table7.1/n64" or
// "fig6.5/gaussian-twos-complement".  Prefix queries ("table7.1/") return
// all points of one artifact in registration (= presentation) order.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arith/carry_chain.hpp"
#include "arith/distributions.hpp"
#include "arith/workload.hpp"
#include "harness/montecarlo.hpp"

namespace vlcsa::harness {

/// Which behavioral model an error-rate experiment drives.
enum class ModelKind {
  kVlcsa1,
  kVlcsa2,
  kVlsa,
};

[[nodiscard]] const char* to_string(ModelKind kind);

/// Inverse of to_string(ModelKind) ("VLCSA 1"/"VLCSA 2"/"VLSA" — the names
/// experiment records and the service protocol carry).  Returns false on
/// unknown text without touching `out`.
[[nodiscard]] bool parse_model_kind(std::string_view text, ModelKind& out);

/// One error-rate/latency experiment: a variable-latency adder configuration
/// pitted against an operand distribution.
struct ErrorRateExperiment {
  std::string name;
  std::string description;
  ModelKind model = ModelKind::kVlcsa1;
  int width = 64;
  int window = 14;  // SCSA window size k, or VLSA speculative chain length l
  arith::InputDistribution dist = arith::InputDistribution::kUniformUnsigned;
  arith::GaussianParams params;
  std::uint64_t default_samples = 200000;
};

/// Runs an error-rate experiment on the parallel engine (`threads` as in
/// engine.hpp: 0 = all hardware threads, result thread-count-invariant).
/// `path` selects the bit-sliced batch pipeline (default) or the scalar
/// oracle; both produce bit-identical counters (see montecarlo.hpp).
[[nodiscard]] ErrorRateResult run_experiment(const ErrorRateExperiment& experiment,
                                             std::uint64_t samples, std::uint64_t seed,
                                             int threads = 0,
                                             EvalPath path = EvalPath::kBatched);

/// RunOptions variant: same semantics, with the full engine knob set exposed
/// — in particular RunOptions::cancel, which the service daemon's
/// per-request timeout uses for cooperative cancellation (engine.hpp throws
/// RunCancelled, so a cancelled run never yields a partial result).
[[nodiscard]] ErrorRateResult run_experiment(const ErrorRateExperiment& experiment,
                                             const RunOptions& options,
                                             EvalPath path = EvalPath::kBatched);

/// One carry-chain-statistics experiment (the Figs 6.1–6.5 family): a
/// workload whose additions feed a CarryChainProfiler.
struct ChainProfileExperiment {
  enum class Workload {
    kDistribution,  // one sample = one operand pair from `dist`
    kCrypto,        // one sample = one top-level instrumented crypto op
  };

  std::string name;
  std::string description;
  int width = 32;
  Workload workload = Workload::kDistribution;
  arith::InputDistribution dist = arith::InputDistribution::kUniformUnsigned;
  arith::GaussianParams params;
  arith::CryptoKind crypto_kind = arith::CryptoKind::kRsaLike;
  int crypto_field_bits = 16;
  int crypto_exponent_bits = 24;
  std::uint64_t default_samples = 1000000;
};

[[nodiscard]] arith::CarryChainProfiler run_experiment(
    const ChainProfileExperiment& experiment, std::uint64_t samples, std::uint64_t seed,
    int threads = 0);

/// RunOptions variant (see the error-rate overload above for why).
[[nodiscard]] arith::CarryChainProfiler run_experiment(
    const ChainProfileExperiment& experiment, const RunOptions& options);

/// All registered experiments, in registration order.
[[nodiscard]] const std::vector<ErrorRateExperiment>& error_rate_experiments();
[[nodiscard]] const std::vector<ChainProfileExperiment>& chain_profile_experiments();

/// Exact-name lookup; nullptr when absent.
[[nodiscard]] const ErrorRateExperiment* find_error_rate_experiment(std::string_view name);
[[nodiscard]] const ChainProfileExperiment* find_chain_profile_experiment(
    std::string_view name);

/// All experiments whose name starts with `prefix`, in registration order.
[[nodiscard]] std::vector<const ErrorRateExperiment*> error_rate_experiments_with_prefix(
    std::string_view prefix);
[[nodiscard]] std::vector<const ChainProfileExperiment*> chain_profile_experiments_with_prefix(
    std::string_view prefix);

}  // namespace vlcsa::harness
