#include "netlist/opt.hpp"

#include <unordered_map>
#include <vector>

namespace vlcsa::netlist {

namespace {

struct GateKey {
  GateKind kind;
  std::uint32_t f0, f1, f2;

  bool operator==(const GateKey&) const = default;
};

struct GateKeyHash {
  std::size_t operator()(const GateKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.kind);
    h = h * 1000003u ^ k.f0;
    h = h * 1000003u ^ k.f1;
    h = h * 1000003u ^ k.f2;
    return h;
  }
};

/// Builds the optimized gate sea.  All emission funnels through emit(), which
/// applies local rewrites first and structural hashing second, so rewrite
/// products are themselves simplified and shared.
class Optimizer {
 public:
  explicit Optimizer(const Netlist& src) : src_(src), out_(src.name()) {}

  Netlist run() {
    map_.assign(src_.num_gates(), Signal{});
    const auto& gates = src_.gates();
    std::size_t input_idx = 0;
    for (std::uint32_t i = 0; i < gates.size(); ++i) {
      const Gate& g = gates[i];
      switch (g.kind) {
        case GateKind::kInput:
          map_[i] = out_.add_input(src_.inputs()[input_idx++].name);
          break;
        case GateKind::kConst0:
          map_[i] = out_.constant(false);
          break;
        case GateKind::kConst1:
          map_[i] = out_.constant(true);
          break;
        default: {
          const int pins = fanin_count(g.kind);
          Signal f[3];
          for (int pin = 0; pin < pins; ++pin) {
            f[pin] = map_[g.fanin[static_cast<std::size_t>(pin)].id];
          }
          map_[i] = emit(g.kind, f[0], f[1], f[2]);
          break;
        }
      }
    }
    for (const auto& port : src_.outputs()) {
      out_.add_output(port.name, map_[port.signal.id], port.group);
    }
    return prune(out_);
  }

 private:
  [[nodiscard]] bool is_const(Signal s, bool value) const {
    const GateKind k = out_.gate(s).kind;
    return value ? k == GateKind::kConst1 : k == GateKind::kConst0;
  }

  /// True when `a` is the complement of `b` (either is a NOT of the other).
  [[nodiscard]] bool complementary(Signal a, Signal b) const {
    const Gate& ga = out_.gate(a);
    if (ga.kind == GateKind::kNot && ga.fanin[0] == b) return true;
    const Gate& gb = out_.gate(b);
    return gb.kind == GateKind::kNot && gb.fanin[0] == a;
  }

  Signal emit_not(Signal x) { return emit(GateKind::kNot, x, {}, {}); }

  Signal emit(GateKind kind, Signal a, Signal b, Signal c) {
    switch (kind) {
      case GateKind::kBuf:
        return a;  // buffers carry no logic; timing inserts drivers implicitly
      case GateKind::kNot: {
        if (is_const(a, false)) return out_.constant(true);
        if (is_const(a, true)) return out_.constant(false);
        const Gate& g = out_.gate(a);
        if (g.kind == GateKind::kNot) return g.fanin[0];
        break;
      }
      case GateKind::kAnd2: {
        if (is_const(a, false) || is_const(b, false)) return out_.constant(false);
        if (is_const(a, true)) return b;
        if (is_const(b, true)) return a;
        if (a == b) return a;
        if (complementary(a, b)) return out_.constant(false);
        break;
      }
      case GateKind::kOr2: {
        if (is_const(a, true) || is_const(b, true)) return out_.constant(true);
        if (is_const(a, false)) return b;
        if (is_const(b, false)) return a;
        if (a == b) return a;
        if (complementary(a, b)) return out_.constant(true);
        break;
      }
      case GateKind::kNand2: {
        if (is_const(a, false) || is_const(b, false)) return out_.constant(true);
        if (is_const(a, true)) return emit_not(b);
        if (is_const(b, true)) return emit_not(a);
        if (a == b) return emit_not(a);
        if (complementary(a, b)) return out_.constant(true);
        break;
      }
      case GateKind::kNor2: {
        if (is_const(a, true) || is_const(b, true)) return out_.constant(false);
        if (is_const(a, false)) return emit_not(b);
        if (is_const(b, false)) return emit_not(a);
        if (a == b) return emit_not(a);
        if (complementary(a, b)) return out_.constant(false);
        break;
      }
      case GateKind::kXor2: {
        if (is_const(a, false)) return b;
        if (is_const(b, false)) return a;
        if (is_const(a, true)) return emit_not(b);
        if (is_const(b, true)) return emit_not(a);
        if (a == b) return out_.constant(false);
        if (complementary(a, b)) return out_.constant(true);
        break;
      }
      case GateKind::kXnor2: {
        if (is_const(a, true)) return b;
        if (is_const(b, true)) return a;
        if (is_const(a, false)) return emit_not(b);
        if (is_const(b, false)) return emit_not(a);
        if (a == b) return out_.constant(true);
        if (complementary(a, b)) return out_.constant(false);
        break;
      }
      case GateKind::kMux2: {
        // (a, b, c) = (sel, d0, d1)
        if (is_const(a, false)) return b;
        if (is_const(a, true)) return c;
        if (b == c) return b;
        if (is_const(b, false) && is_const(c, true)) return a;
        if (is_const(b, true) && is_const(c, false)) return emit_not(a);
        if (is_const(c, true)) return emit(GateKind::kOr2, a, b, {});       // sel | d0
        if (is_const(c, false)) return emit(GateKind::kAnd2, emit_not(a), b, {});
        if (is_const(b, false)) return emit(GateKind::kAnd2, a, c, {});     // sel & d1
        if (is_const(b, true)) return emit(GateKind::kOr2, emit_not(a), c, {});
        if (c == a) return emit(GateKind::kOr2, a, b, {});                  // sel ? sel : d0
        if (b == a) return emit(GateKind::kAnd2, a, c, {});                 // sel ? d1 : sel
        break;
      }
      default:
        break;
    }

    GateKey key{kind, a.id, b.id, c.id};
    if (is_commutative(kind) && key.f1 < key.f0) std::swap(key.f0, key.f1);
    if (const auto it = strash_.find(key); it != strash_.end()) return it->second;
    const Signal s = out_.make_gate(kind, a, b, c);
    strash_.emplace(key, s);
    return s;
  }

  const Netlist& src_;
  Netlist out_;
  std::vector<Signal> map_;
  std::unordered_map<GateKey, Signal, GateKeyHash> strash_;
};

}  // namespace

Netlist prune(const Netlist& nl) {
  std::vector<bool> live(nl.num_gates(), false);
  // Outputs are the roots; walk fanin cones iteratively.
  std::vector<Signal> stack;
  for (const auto& port : nl.outputs()) stack.push_back(port.signal);
  while (!stack.empty()) {
    const Signal s = stack.back();
    stack.pop_back();
    if (live[s.id]) continue;
    live[s.id] = true;
    const Gate& g = nl.gate(s);
    const int pins = fanin_count(g.kind);
    for (int pin = 0; pin < pins; ++pin) stack.push_back(g.fanin[static_cast<std::size_t>(pin)]);
  }

  Netlist out(nl.name());
  std::vector<Signal> map(nl.num_gates(), Signal{});
  const auto& gates = nl.gates();
  std::size_t input_idx = 0;
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.kind == GateKind::kInput) {
      // Inputs are interface: keep all of them, live or not.
      map[i] = out.add_input(nl.inputs()[input_idx++].name);
      continue;
    }
    if (!live[i]) continue;
    switch (g.kind) {
      case GateKind::kConst0:
        map[i] = out.constant(false);
        break;
      case GateKind::kConst1:
        map[i] = out.constant(true);
        break;
      default: {
        const int pins = fanin_count(g.kind);
        Signal f[3];
        for (int pin = 0; pin < pins; ++pin) {
          f[pin] = map[g.fanin[static_cast<std::size_t>(pin)].id];
        }
        map[i] = out.make_gate(g.kind, f[0], f[1], f[2]);
        break;
      }
    }
  }
  for (const auto& port : nl.outputs()) {
    out.add_output(port.name, map[port.signal.id], port.group);
  }
  return out;
}

Netlist optimize(const Netlist& nl, OptStats* stats) {
  Netlist out = Optimizer(nl).run();
  if (stats != nullptr) {
    stats->gates_before = nl.logic_gate_count();
    stats->gates_after = out.logic_gate_count();
  }
  return out;
}

}  // namespace vlcsa::netlist
