#include "service/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace vlcsa::service {

namespace {

/// The quantile value: the upper bound (seconds) of the first bucket whose
/// cumulative count reaches fraction `q` of `total`.  The overflow bucket
/// reports the largest finite bound (latency_max_seconds is the exact tail).
template <std::size_t N>
double bucket_quantile(const std::array<std::uint64_t, N>& buckets,
                       const std::array<std::uint64_t, N - 1>& bounds_us, std::uint64_t total,
                       double q) {
  if (total == 0) return 0.0;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const std::size_t bound = std::min(i, bounds_us.size() - 1);
      return static_cast<double>(bounds_us[bound]) * 1e-6;
    }
  }
  return static_cast<double>(bounds_us.back()) * 1e-6;
}

}  // namespace

ServiceMetrics::ServiceMetrics()
    : start_(std::chrono::steady_clock::now()),
      by_type_(request_types().size(), 0),
      stages_(stage_names().size()) {}

const std::vector<std::string>& ServiceMetrics::request_types() {
  // Keep in sync with ExperimentService's dispatch table (service.cpp); the
  // protocol-doc test pins the dispatch table against DESIGN.md and the
  // metrics test pins this list against the dispatch table.
  static const std::vector<std::string> kTypes = {
      "run",     "run-batch",    "list",     "describe",  "cache-stats",
      "metrics", "metrics-prom", "drain",    "shutdown",  "invalid"};
  return kTypes;
}

const std::vector<std::string>& ServiceMetrics::stage_names() {
  // The trace span names the service emits (service.cpp request handling) —
  // these become the fixed `stage` label set of the exposition, so scrapers
  // never see a label churn.  "request" (the root span) is excluded: its
  // distribution is the request latency histogram itself.
  static const std::vector<std::string> kStages = {
      "parse", "cache-lookup", "coalesced-wait", "lease-wait", "engine-run",
      "record-write", "render", "element"};
  return kStages;
}

std::vector<double> ServiceMetrics::latency_bucket_bounds_seconds() {
  std::vector<double> bounds;
  bounds.reserve(kBucketBoundsUs.size());
  for (const std::uint64_t us : kBucketBoundsUs) {
    bounds.push_back(static_cast<double>(us) * 1e-6);
  }
  return bounds;
}

std::size_t ServiceMetrics::bucket_index(double seconds) {
  const double us = seconds * 1e6;
  for (std::size_t i = 0; i < kBucketBoundsUs.size(); ++i) {
    if (us <= static_cast<double>(kBucketBoundsUs[i])) return i;
  }
  return kBucketBoundsUs.size();  // overflow
}

ServiceMetrics::InFlight::InFlight(ServiceMetrics& metrics) : metrics_(metrics) {
  const std::lock_guard<std::mutex> lock(metrics_.mutex_);
  ++metrics_.in_flight_;
}

ServiceMetrics::InFlight::~InFlight() {
  const std::lock_guard<std::mutex> lock(metrics_.mutex_);
  --metrics_.in_flight_;
}

void ServiceMetrics::record_request(const std::string& type, bool ok, double seconds) {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++requests_total_;
  ++(ok ? ok_total_ : error_total_);
  const auto& types = request_types();
  std::size_t index = types.size() - 1;  // "invalid" is the fallback slot
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i] == type) {
      index = i;
      break;
    }
  }
  ++by_type_[index];

  latency_max_seconds_ = std::max(latency_max_seconds_, seconds);
  latency_sum_seconds_ += seconds;
  ++buckets_[bucket_index(seconds)];

  // qps_60s ring: tag the slot with its absolute second so a slot left over
  // from >60 s ago is reset here (and ignored by snapshot) instead of
  // inflating the window after an idle gap.
  const std::uint64_t second = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now - start_).count());
  const std::size_t slot = static_cast<std::size_t>(second % 60);
  if (second_stamps_[slot] != second + 1) {
    second_stamps_[slot] = second + 1;
    second_counts_[slot] = 0;
  }
  ++second_counts_[slot];
}

void ServiceMetrics::record_timeout() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++timeouts_;
}

void ServiceMetrics::record_batch_element() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++batch_elements_;
}

void ServiceMetrics::record_sweep_request(std::uint64_t cells) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++sweep_requests_;
  sweep_cells_ += cells;
}

void ServiceMetrics::record_rejected_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_connections_;
}

void ServiceMetrics::set_draining(bool draining) {
  const std::lock_guard<std::mutex> lock(mutex_);
  draining_ = draining;
}

void ServiceMetrics::record_stage(const std::string& stage, double seconds) {
  const auto& names = stage_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == stage) {
      const std::lock_guard<std::mutex> lock(mutex_);
      StageState& state = stages_[i];
      ++state.buckets[bucket_index(seconds)];
      state.sum_seconds += seconds;
      ++state.count;
      return;
    }
  }
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.requests_total = requests_total_;
  out.ok_total = ok_total_;
  out.error_total = error_total_;
  out.timeouts = timeouts_;
  out.batch_elements = batch_elements_;
  out.sweep_requests = sweep_requests_;
  out.sweep_cells = sweep_cells_;
  out.rejected_connections = rejected_connections_;
  out.in_flight = in_flight_;
  out.draining = draining_ ? 1 : 0;
  out.uptime_seconds = std::chrono::duration<double>(now - start_).count();
  out.qps = out.uptime_seconds > 0.0
                ? static_cast<double>(requests_total_) / out.uptime_seconds
                : 0.0;
  // Recent-window rate: count the ring slots belonging to the last 60
  // seconds (stale slots keep their old stamp and are skipped), over a
  // window no longer than the uptime — so early in a run qps_60s equals the
  // lifetime average instead of under-reporting.
  const std::uint64_t second_now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now - start_).count());
  std::uint64_t recent = 0;
  for (std::size_t slot = 0; slot < second_stamps_.size(); ++slot) {
    if (second_stamps_[slot] == 0) continue;
    const std::uint64_t second = second_stamps_[slot] - 1;
    if (second + 60 > second_now) recent += second_counts_[slot];
  }
  const double window_seconds = std::min(out.uptime_seconds, 60.0);
  out.qps_60s =
      window_seconds > 0.0 ? static_cast<double>(recent) / window_seconds : 0.0;
  out.latency_p50_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.50);
  out.latency_p95_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.95);
  out.latency_p99_seconds = bucket_quantile(buckets_, kBucketBoundsUs, requests_total_, 0.99);
  out.latency_max_seconds = latency_max_seconds_;
  out.latency_sum_seconds = latency_sum_seconds_;
  out.latency_buckets.assign(buckets_.begin(), buckets_.end());
  const auto& types = request_types();
  out.by_type.reserve(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    out.by_type.push_back({types[i], by_type_[i]});
  }
  const auto& stages = stage_names();
  out.stages.reserve(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    StageLatency stage;
    stage.name = stages[i];
    stage.buckets.assign(stages_[i].buckets.begin(), stages_[i].buckets.end());
    stage.sum_seconds = stages_[i].sum_seconds;
    stage.count = stages_[i].count;
    out.stages.push_back(std::move(stage));
  }
  return out;
}

namespace {

/// Prometheus float formatting: %g keeps le labels readable ("0.001",
/// "1e-06") and the text format accepts any C float literal.
std::string prom_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::string prom_u64(std::uint64_t value) { return std::to_string(value); }

void prom_header(std::string& out, const char* name, const char* type, const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// One histogram: cumulative le-labeled buckets, then _sum and _count.
/// `labels` is either empty or a pre-rendered `name="value",` list
/// (trailing comma) the le label is appended to.
void prom_histogram(std::string& out, const char* name, const std::string& labels,
                    const std::vector<double>& bounds,
                    const std::vector<std::uint64_t>& buckets, double sum_seconds,
                    std::uint64_t count) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size() && i < buckets.size(); ++i) {
    cumulative += buckets[i];
    out += name;
    out += "_bucket{";
    out += labels;
    out += "le=\"";
    out += prom_double(bounds[i]);
    out += "\"} ";
    out += prom_u64(cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket{";
  out += labels;
  out += "le=\"+Inf\"} ";
  out += prom_u64(count);
  out += '\n';
  // _sum/_count carry the labels without le (and no "{}" when unlabeled).
  const std::string bare =
      labels.empty() ? "" : "{" + labels.substr(0, labels.size() - 1) + "}";
  out += name;
  out += "_sum";
  out += bare;
  out += ' ';
  out += prom_double(sum_seconds);
  out += '\n';
  out += name;
  out += "_count";
  out += bare;
  out += ' ';
  out += prom_u64(count);
  out += '\n';
}

void prom_line(std::string& out, const char* name, const std::string& labels,
               const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string render_prometheus_text(const MetricsSnapshot& metrics, const CacheStats& cache) {
  const std::vector<double> bounds = ServiceMetrics::latency_bucket_bounds_seconds();
  std::string out;
  out.reserve(8192);

  prom_header(out, "vlcsa_uptime_seconds", "gauge", "Daemon uptime in seconds.");
  prom_line(out, "vlcsa_uptime_seconds", "", prom_double(metrics.uptime_seconds));
  prom_header(out, "vlcsa_requests_total", "counter", "Requests handled (all types).");
  prom_line(out, "vlcsa_requests_total", "", prom_u64(metrics.requests_total));
  prom_header(out, "vlcsa_requests_ok_total", "counter", "Requests answered status ok.");
  prom_line(out, "vlcsa_requests_ok_total", "", prom_u64(metrics.ok_total));
  prom_header(out, "vlcsa_requests_error_total", "counter",
              "Requests answered status error.");
  prom_line(out, "vlcsa_requests_error_total", "", prom_u64(metrics.error_total));
  prom_header(out, "vlcsa_requests_by_type_total", "counter",
              "Requests handled, by protocol request type.");
  for (const RequestTypeCount& entry : metrics.by_type) {
    prom_line(out, "vlcsa_requests_by_type_total", "type=\"" + entry.name + "\"",
              prom_u64(entry.count));
  }
  prom_header(out, "vlcsa_timeouts_total", "counter",
              "Run or run-batch elements cancelled by their deadline.");
  prom_line(out, "vlcsa_timeouts_total", "", prom_u64(metrics.timeouts));
  prom_header(out, "vlcsa_batch_elements_total", "counter",
              "run-batch elements processed.");
  prom_line(out, "vlcsa_batch_elements_total", "", prom_u64(metrics.batch_elements));
  prom_header(out, "vlcsa_sweep_requests_total", "counter",
              "run/run-batch requests declaring origin \"sweep\".");
  prom_line(out, "vlcsa_sweep_requests_total", "", prom_u64(metrics.sweep_requests));
  prom_header(out, "vlcsa_sweep_cells_total", "counter",
              "Sweep grid cells carried by origin-\"sweep\" run traffic.");
  prom_line(out, "vlcsa_sweep_cells_total", "", prom_u64(metrics.sweep_cells));
  prom_header(out, "vlcsa_rejected_connections_total", "counter",
              "Connections rejected at the backlog cap.");
  prom_line(out, "vlcsa_rejected_connections_total", "",
            prom_u64(metrics.rejected_connections));
  prom_header(out, "vlcsa_in_flight", "gauge", "Requests currently inside handlers.");
  prom_line(out, "vlcsa_in_flight", "", prom_u64(metrics.in_flight));
  prom_header(out, "vlcsa_draining", "gauge",
              "1 while the daemon is draining (rejecting new runs).");
  prom_line(out, "vlcsa_draining", "", prom_u64(metrics.draining));
  prom_header(out, "vlcsa_qps_60s", "gauge",
              "Request rate over the last 60 seconds.");
  prom_line(out, "vlcsa_qps_60s", "", prom_double(metrics.qps_60s));

  prom_header(out, "vlcsa_request_latency_seconds", "histogram",
              "Request handler wall time.");
  prom_histogram(out, "vlcsa_request_latency_seconds", "", bounds, metrics.latency_buckets,
                 metrics.latency_sum_seconds, metrics.requests_total);
  prom_header(out, "vlcsa_stage_latency_seconds", "histogram",
              "Per-stage request time, from trace spans (populated while "
              "tracing is active).");
  for (const StageLatency& stage : metrics.stages) {
    prom_histogram(out, "vlcsa_stage_latency_seconds", "stage=\"" + stage.name + "\",",
                   bounds, stage.buckets, stage.sum_seconds, stage.count);
  }

  prom_header(out, "vlcsa_cache_hits_total", "counter", "Cache hits, by tier.");
  prom_line(out, "vlcsa_cache_hits_total", "tier=\"memory\"", prom_u64(cache.memory_hits));
  prom_line(out, "vlcsa_cache_hits_total", "tier=\"disk\"", prom_u64(cache.disk_hits));
  prom_line(out, "vlcsa_cache_hits_total", "tier=\"coalesced\"",
            prom_u64(cache.coalesced_hits));
  prom_header(out, "vlcsa_cache_misses_total", "counter", "Cache misses (leader lookups).");
  prom_line(out, "vlcsa_cache_misses_total", "", prom_u64(cache.misses));
  prom_header(out, "vlcsa_cache_stores_total", "counter", "Records stored.");
  prom_line(out, "vlcsa_cache_stores_total", "", prom_u64(cache.stores));
  prom_header(out, "vlcsa_cache_evictions_total", "counter", "Evictions, by tier.");
  prom_line(out, "vlcsa_cache_evictions_total", "tier=\"memory\"",
            prom_u64(cache.evictions));
  prom_line(out, "vlcsa_cache_evictions_total", "tier=\"disk\"",
            prom_u64(cache.disk_evictions));
  prom_header(out, "vlcsa_cache_invalid_disk_records_total", "counter",
              "Corrupt or mismatched disk records seen.");
  prom_line(out, "vlcsa_cache_invalid_disk_records_total", "",
            prom_u64(cache.invalid_disk_records));
  prom_header(out, "vlcsa_cache_lease_waits_total", "counter",
              "Misses that waited on another replica's compute lease.");
  prom_line(out, "vlcsa_cache_lease_waits_total", "", prom_u64(cache.lease_waits));
  prom_header(out, "vlcsa_cache_lease_takeovers_total", "counter",
              "Stale (crashed-holder) compute leases reaped.");
  prom_line(out, "vlcsa_cache_lease_takeovers_total", "", prom_u64(cache.lease_takeovers));
  prom_header(out, "vlcsa_cache_memory_entries", "gauge", "Memory-tier entries.");
  prom_line(out, "vlcsa_cache_memory_entries", "", prom_u64(cache.memory_entries));
  prom_header(out, "vlcsa_cache_disk_bytes", "gauge", "Disk-tier record bytes.");
  prom_line(out, "vlcsa_cache_disk_bytes", "", prom_u64(cache.disk_bytes));
  return out;
}

}  // namespace vlcsa::service
