// Fig 6.2 — carry-chain length statistics from a cryptographic workload.
//
// The paper reproduces Cilardo [6]'s profile of RSA / ECC / Diffie-Hellman
// benchmark traces; those traces are proprietary, so this bench runs our
// instrumented prime-field workload substitute (see DESIGN.md): real modular
// arithmetic (16-bit residues on a 32-bit datapath, as a bignum word-slice
// would execute) with every datapath addition recorded.  The property the
// figure exists to show — a *bimodal* distribution with a significant mass
// of near-datapath-width chains — emerges from the two's-complement
// subtractions of modular reduction.
//
// The three workloads are the registry's "fig6.2/" experiments; --samples=N
// sets the number of top-level crypto operations per workload.

#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 4);
  harness::print_banner(std::cout, "Figure 6.2",
                        "Carry-chain statistics from instrumented cryptographic "
                        "workloads (16-bit prime field on a 32-bit datapath).");

  for (const auto* experiment : harness::chain_profile_experiments_with_prefix("fig6.2/")) {
    const auto profiler =
        harness::run_experiment(*experiment, args.samples, args.seed, args.threads);
    std::cout << "---- workload: " << to_string(experiment->crypto_kind) << " ("
              << profiler.additions() << " datapath additions) ----\n";
    bench::print_chain_histogram(profiler);
    std::cout << "fraction of chains reaching >= half the datapath: "
              << harness::fmt_pct(profiler.fraction_at_least(16), 2) << "\n\n";
  }
  std::cout << "Expected shape: short-chain mass plus a second mode near the datapath\n"
               "width (sign-extension chains from modular subtraction) — the pattern\n"
               "2's-complement Gaussian inputs approximate (Ch. 6.3).\n";
  return 0;
}
