#pragma once
// Reconstruction of VLSA — the variable-latency speculative adder of Verma,
// Brisk and Ienne [17], the paper's primary baseline (Ch. 7.4).
//
// Speculation is per *bit position*: the carry out of bit j is computed from
// only the l bits ending at bit j ("speculative carry chain length" l),
// realized as a depth-truncated Kogge-Stone tree with sharing.  Detection
// flags any run of l consecutive propagate bits (an over-approximation of
// "some carry chain exceeds l").  Recovery completes the truncated prefix
// tree into a full Kogge-Stone and re-derives the sums.
//
// The reconstruction preserves the properties the paper leans on:
//  * detection is *slower* than speculation (it appends an n-wide OR tree),
//  * total area exceeds a plain Kogge-Stone (full tree + detector + spec),
//  * speculation errs on any carry chain longer than l, so error rates match
//    the published design points (Table 7.3).

#include <cstdint>
#include <vector>

#include "adders/prefix.hpp"
#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "netlist/netlist.hpp"

namespace vlcsa::spec {

using arith::ApInt;

struct VlsaConfig {
  int width = 64;
  int chain = 17;  // speculative carry chain length l
};

struct VlsaEvaluation {
  ApInt exact;
  bool exact_cout = false;
  ApInt spec;
  bool spec_cout = false;
  bool err = false;  // detection: some l-long propagate run exists
  ApInt recovered;
  bool recovered_cout = false;

  [[nodiscard]] bool spec_correct() const { return spec == exact && spec_cout == exact_cout; }
  [[nodiscard]] bool stall() const { return err; }
};

/// Word-parallel VLSA evaluation of a whole batch (64 * lane_words samples;
/// lane-mask groups, bit j of word w = sample w*64 + j).  Like
/// ScsaBatchEvaluation, only the predicates the Monte Carlo counters consume
/// are materialized; evaluate() stays the oracle.
struct VlsaBatchEvaluation {
  arith::planeops::PlaneVec spec_wrong;  // speculative result (incl. cout) != exact
  arith::planeops::PlaneVec err;         // detection: some l-long propagate run

  [[nodiscard]] int lane_words() const { return static_cast<int>(err.size()); }

  // Reused scratch planes (see ScsaBatchEvaluation).
  arith::planeops::PlaneVec g, p, carry, runs, pp;
};

class VlsaModel {
 public:
  explicit VlsaModel(VlsaConfig config);

  [[nodiscard]] const VlsaConfig& config() const { return config_; }
  [[nodiscard]] VlsaEvaluation evaluate(const ApInt& a, const ApInt& b) const;

  /// Bit-sliced evaluation of 64 samples (thread-safe; scratch in `out`).
  void evaluate_batch(const arith::BitSlicedBatch& batch, VlsaBatchEvaluation& out) const;

 private:
  VlsaConfig config_;
};

/// Full VLSA netlist with output groups "spec" (sum[i], cout), "detect"
/// (err0, stall, valid) and "recovery" (rec[i], rec_cout) — the same port
/// convention as build_vlcsa_netlist so the synthesis harness treats both
/// uniformly.
[[nodiscard]] netlist::Netlist build_vlsa_netlist(const VlsaConfig& config);

/// Speculative part only (for the Fig 7.2/7.3 comparison).
[[nodiscard]] netlist::Netlist build_vlsa_spec_netlist(const VlsaConfig& config);

}  // namespace vlcsa::spec
