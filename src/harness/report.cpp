#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "harness/cli.hpp"
#include "harness/engine.hpp"

namespace vlcsa::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::add_raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
}

void JsonObject::add(const std::string& key, const std::string& value) {
  add_raw(key, "\"" + json_escape(value) + "\"");
}

void JsonObject::add(const std::string& key, const char* value) {
  add(key, std::string(value));
}

void JsonObject::add(const std::string& key, std::uint64_t value) {
  add_raw(key, std::to_string(value));
}

void JsonObject::add(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    add_raw(key, "null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  add_raw(key, buf);
}

void JsonObject::add(const std::string& key, int value) { add_raw(key, std::to_string(value)); }

void JsonObject::add(const std::string& key, bool value) {
  add_raw(key, value ? "true" : "false");
}

void JsonObject::add_json(const std::string& key, std::string rendered_json) {
  add_raw(key, std::move(rendered_json));
}

void JsonObject::write(std::ostream& os) const {
  os << "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    os << "  \"" << json_escape(fields_[i].first) << "\": " << fields_[i].second;
    os << (i + 1 < fields_.size() ? ",\n" : "\n");
  }
  os << "}\n";
}

std::string JsonObject::render_line() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_delta_pct(double value, double baseline) {
  if (baseline == 0.0) return "n/a";
  const double delta = (value - baseline) / baseline * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", delta);
  return buf;
}

std::string fmt_sci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

BenchArgs BenchArgs::parse(int argc, char** argv, std::uint64_t default_samples) {
  BenchArgs args;
  args.samples = default_samples;
  const std::vector<ValueFlag> flags = {
      {"--samples", [&args](const std::string& v) { return parse_u64(v, args.samples); }},
      {"--seed", [&args](const std::string& v) { return parse_u64(v, args.seed); }},
      {"--threads",
       [&args](const std::string& v) { return parse_nonnegative_int(v, args.threads); }},
  };
  // "--benchmark*" is tolerated so google-benchmark style flags don't kill
  // table benches when the whole bench directory is run with common flags.
  const std::string error =
      parse_value_flags(argc, const_cast<const char* const*>(argv), flags, "--benchmark");
  if (!error.empty()) {
    throw std::invalid_argument(error + " (expected --samples=N, --seed=S or --threads=T)");
  }
  return args;
}

void print_banner(std::ostream& os, const std::string& artifact, const std::string& description) {
  os << "==== " << artifact << " ====\n" << description << "\n\n";
}

std::string render_run_profile(const RunProfile& profile) {
  JsonObject object;
  object.add("shards", profile.shards);
  object.add("samples", profile.samples);
  object.add("batch_blocks", profile.batch_blocks);
  object.add("batched_samples", profile.batched_samples);
  object.add("scalar_samples", profile.scalar_samples);
  object.add("rng_words", profile.rng_words);
  object.add("fill_seconds", profile.fill_seconds);
  object.add("eval_seconds", profile.eval_seconds);
  object.add("merge_seconds", profile.merge_seconds);
  object.add("threads", profile.threads);
  object.add("lane_words", profile.lane_words);
  object.add("backend", profile.backend);
  return object.render_line();
}

}  // namespace vlcsa::harness
