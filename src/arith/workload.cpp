#include "arith/workload.hpp"

#include <stdexcept>
#include <utility>

namespace vlcsa::arith {

ApInt builtin_prime(int bits) {
  switch (bits) {
    case 16:  // 2^16 - 15
      return ApInt::from_u64(16, 65521);
    case 32:  // 2^31 - 1 (Mersenne)
      return ApInt::from_u64(32, (std::uint64_t{1} << 31) - 1);
    case 64:  // 2^61 - 1 (Mersenne)
      return ApInt::from_u64(64, (std::uint64_t{1} << 61) - 1);
    case 128: {  // 2^127 - 1 (Mersenne)
      ApInt one = ApInt::from_u64(128, 1);
      return one.shl(127) - one;
    }
    case 256: {  // 2^255 - 19 (Curve25519 field prime)
      ApInt one = ApInt::from_u64(256, 1);
      return one.shl(255) - ApInt::from_u64(256, 19);
    }
    default:
      throw std::invalid_argument("builtin_prime: unsupported size (16/32/64/128/256)");
  }
}

namespace {

/// Largest supported prime size <= the request, minimum 16.
int default_field_bits(int width) {
  for (const int bits : {256, 128, 64, 32, 16}) {
    if (bits <= width / 2) return bits;
  }
  return 16;
}

}  // namespace

ModField::ModField(ApInt modulus, AddObserver observer)
    : modulus_(std::move(modulus)),
      neg_modulus_(modulus_.negated()),
      observer_(std::move(observer)) {
  if (modulus_.is_zero()) throw std::invalid_argument("ModField: zero modulus");
  if (modulus_.bit(modulus_.width() - 1)) {
    throw std::invalid_argument("ModField: modulus must be < 2^(width-1)");
  }
}

ApInt ModField::random_element(BlockRng& rng) const {
  // Rejection sampling over [0, 2^ceil(log2 m)) — acceptance >= 1/2 even
  // when the modulus is much smaller than the datapath.
  const int top = modulus_.highest_set_bit();
  for (;;) {
    ApInt candidate = ApInt::random(width(), rng);
    for (int i = top + 1; i < width(); ++i) candidate.set_bit(i, false);
    if (candidate.compare_unsigned(modulus_) < 0) return candidate;
  }
}

ApInt ModField::observed_add(const ApInt& a, const ApInt& b) {
  if (observer_) observer_(a, b);
  ++additions_;
  return a + b;
}

ApInt ModField::reduce_once(const ApInt& x) {
  if (x.compare_unsigned(modulus_) < 0) return x;
  // x - m realized the way the datapath would: x + twos_complement(m).
  return observed_add(x, neg_modulus_);
}

ApInt ModField::add(const ApInt& a, const ApInt& b) {
  return reduce_once(observed_add(a, b));
}

ApInt ModField::sub(const ApInt& a, const ApInt& b) {
  // a - b as a two's-complement addition; when a < b the raw result wraps,
  // fixed up by adding m back (another plain addition).
  ApInt raw = observed_add(a, b.negated());
  if (a.compare_unsigned(b) < 0) raw = observed_add(raw, modulus_);
  return raw;
}

ApInt ModField::mul(const ApInt& a, const ApInt& b) {
  ApInt acc(width());
  const int hi = b.highest_set_bit();
  for (int i = hi; i >= 0; --i) {
    acc = dbl(acc);
    if (b.bit(i)) acc = add(acc, a);
  }
  return acc;
}

ApInt ModField::pow(const ApInt& base, const ApInt& exponent) {
  ApInt acc = ApInt::from_u64(width(), 1);
  const int hi = exponent.highest_set_bit();
  if (hi < 0) return acc;  // exponent 0
  for (int i = hi; i >= 0; --i) {
    acc = mul(acc, acc);
    if (exponent.bit(i)) acc = mul(acc, base);
  }
  return acc;
}

const char* to_string(CryptoKind kind) {
  switch (kind) {
    case CryptoKind::kRsaLike:
      return "rsa-like";
    case CryptoKind::kDiffieHellmanLike:
      return "diffie-hellman-like";
    case CryptoKind::kEcFieldLike:
      return "ec-field-like";
  }
  return "unknown";
}

std::uint64_t run_crypto_workload(const CryptoWorkloadConfig& config,
                                  CarryChainProfiler& profiler) {
  // Shared seed_seq discipline (arith/rng.hpp) instead of the old ad-hoc
  // direct-seed construction, so workload streams follow the same seeding
  // rules as every engine shard.
  BlockRng rng = make_stream_rng(config.seed);
  const int field_bits =
      config.field_bits > 0 ? config.field_bits : default_field_bits(config.width);
  const ApInt modulus = builtin_prime(field_bits).zext(config.width);
  if (modulus.width() != config.width || modulus.highest_set_bit() >= config.width - 1) {
    throw std::invalid_argument("crypto workload: field does not fit the datapath");
  }
  ModField field(modulus,
                 [&profiler](const ApInt& a, const ApInt& b) { profiler.record(a, b); });

  switch (config.kind) {
    case CryptoKind::kRsaLike: {
      // c = m^65537 mod p: the classic short public exponent.
      const ApInt e = ApInt::from_u64(config.width, 65537);
      for (int op = 0; op < config.operations; ++op) {
        const ApInt m = field.random_element(rng);
        (void)field.pow(m, e);
      }
      break;
    }
    case CryptoKind::kDiffieHellmanLike: {
      for (int op = 0; op < config.operations; ++op) {
        const ApInt g = field.random_element(rng);
        ApInt x = ApInt::random(config.width, rng);
        // Truncate the secret exponent so runtime stays laptop-scale.
        for (int i = config.exponent_bits; i < config.width; ++i) x.set_bit(i, false);
        (void)field.pow(g, x);
      }
      break;
    }
    case CryptoKind::kEcFieldLike: {
      // The field-op skeleton of an affine point addition:
      //   lambda-num = y2 - y1; lambda-den = x2 - x1 (inverted via Fermat in
      //   real code; here replaced by a random residue to bound runtime);
      //   x3 = lambda^2 - x1 - x2; y3 = lambda (x1 - x3) - y1.
      for (int op = 0; op < config.operations; ++op) {
        const ApInt x1 = field.random_element(rng);
        const ApInt y1 = field.random_element(rng);
        const ApInt x2 = field.random_element(rng);
        const ApInt y2 = field.random_element(rng);
        const ApInt den_inv = field.random_element(rng);
        const ApInt num = field.sub(y2, y1);
        const ApInt lambda = field.mul(num, den_inv);
        const ApInt lambda_sq = field.mul(lambda, lambda);
        const ApInt x3 = field.sub(field.sub(lambda_sq, x1), x2);
        const ApInt y3 = field.sub(field.mul(lambda, field.sub(x1, x3)), y1);
        (void)y3;
      }
      break;
    }
  }
  return field.additions();
}

}  // namespace vlcsa::arith
