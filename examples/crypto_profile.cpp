// The Ch. 6 story end to end: profile the carry chains of a real
// (instrumented) cryptographic workload, show why VLCSA 1 degrades on such
// inputs, and show VLCSA 2 recovering the speculation win — by replaying the
// *exact* operand stream the workload's datapath saw through both
// variable-latency models.
//
//   $ ./build/examples/crypto_profile

#include <iostream>
#include <vector>

#include "arith/workload.hpp"
#include "harness/report.hpp"
#include "speculative/error_model.hpp"
#include "speculative/vlcsa.hpp"

using namespace vlcsa;
using arith::ApInt;

int main() {
  // 1. Run an EC-style prime-field workload (16-bit residues on a 64-bit
  //    datapath) and capture every addition its datapath performs.
  constexpr int kWidth = 64;
  std::vector<std::pair<ApInt, ApInt>> trace;
  arith::CarryChainProfiler profiler(kWidth, arith::ChainMetric::kAllChains);
  arith::ModField field(arith::builtin_prime(16).zext(kWidth),
                        [&](const ApInt& a, const ApInt& b) {
                          profiler.record(a, b);
                          trace.emplace_back(a, b);
                        });
  vlcsa::arith::BlockRng rng(99);
  for (int op = 0; op < 64; ++op) {
    const ApInt x1 = field.random_element(rng);
    const ApInt y1 = field.random_element(rng);
    const ApInt lambda = field.mul(field.sub(y1, x1), field.random_element(rng));
    (void)field.sub(field.mul(lambda, lambda), field.add(x1, y1));
  }

  std::cout << "captured " << trace.size() << " datapath additions\n";
  std::cout << "carry chains >= 32 bits: "
            << harness::fmt_pct(profiler.fraction_at_least(32), 2)
            << " of all chains (mean length "
            << harness::fmt_fixed(profiler.mean_length(), 1) << ")\n\n";

  // 2. Replay the trace through VLCSA 1 and VLCSA 2 at the same window size.
  const int k = spec::published_vlcsa2_parameters().k_rate_01;  // 13
  const spec::VlcsaModel v1({kWidth, k, spec::ScsaVariant::kScsa1});
  const spec::VlcsaModel v2({kWidth, k, spec::ScsaVariant::kScsa2});
  spec::LatencyStats s1, s2;
  std::uint64_t wrong = 0;
  for (const auto& [a, b] : trace) {
    const auto r1 = v1.step(a, b);
    const auto r2 = v2.step(a, b);
    s1.record(r1);
    s2.record(r2);
    if (r1.result != r1.eval.exact || r2.result != r2.eval.exact) ++wrong;
  }

  harness::Table table({"design", "window", "stall rate", "avg cycles (eq. 5.2)"});
  table.add_row({"VLCSA 1", std::to_string(k), harness::fmt_pct(s1.stall_rate()),
                 harness::fmt_fixed(s1.average_cycles(), 4)});
  table.add_row({"VLCSA 2", std::to_string(k), harness::fmt_pct(s2.stall_rate()),
                 harness::fmt_fixed(s2.average_cycles(), 4)});
  table.print(std::cout);
  std::cout << "emitted results wrong (must be 0): " << wrong << "\n";
  std::cout << "\nThe modular-reduction subtractions put sign-extension carry chains\n"
               "through the adder; VLCSA 1 pays a second cycle for each, VLCSA 2's\n"
               "S*,1 bank absorbs the ones that run to the MSB (Ch. 6.4-6.7).\n";
  return 0;
}
