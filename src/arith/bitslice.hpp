#pragma once
// Bit-sliced sample batches: 64 Monte Carlo samples per machine word, and
// `lane_words` words per bit-plane — so one batch carries 64 * lane_words
// samples (256 at the default lane width).
//
// The netlist simulator has always been 64-way bit-sliced (one word = one
// net's value across 64 test vectors).  This header brings the same layout
// to the *behavioral* models: a BitSlicedBatch stores operand pairs as
// bit-planes — plane group `bit` is `lane_words` words whose bit j of word w
// is sample (w*64 + j)'s value of operand bit `bit` — so window
// generate/propagate, speculative carries and detection flags become
// word-parallel boolean algebra over the planes, and the plane-kernel layer
// (arith/planeops.hpp) streams them through SIMD registers.
//
// Layout ("bit-plane group" = lane_words columns of the samples x width
// matrix, flat array index = bit * lane_words + w):
//
//            bit 0   bit 1   ...   bit n-1
//  sample 0 [  .       .              .   ]   row    = one operand (ApInt)
//    ...                                      column = one plane group
//  sample 64*W-1 [ .    .              .   ]           (lane_words words)
//
// The row<->column conversion is the classic 64x64 bit-matrix transpose
// (6 log-steps per block), shared with the netlist-simulator test harness.
// Plane storage is 64-byte aligned (planeops::PlaneVec) so the SIMD
// backends stream whole cache lines.

#include <cstdint>
#include <vector>

#include "arith/apint.hpp"
#include "arith/planeops.hpp"

namespace vlcsa::arith {

/// Number of samples carried per plane word — one lane per bit.
inline constexpr int kBatchLanes = 64;

/// Base plane-group width: 4 words = 256 samples per evaluation, one full
/// AVX2 register per bit-plane.  Results are bit-identical at any width (a
/// tested invariant), so lane width is purely a throughput knob.
inline constexpr int kDefaultLaneWords = 4;

/// The dispatch-aware width the batched Monte Carlo paths use when
/// RunOptions::lane_words == 0: doubles to 8 words (one full 512-bit
/// register per bit-plane, 512 samples per evaluation) when the avx512
/// planeops backend is active, kDefaultLaneWords otherwise.  Counters do not
/// depend on the choice — only throughput does.
[[nodiscard]] int default_lane_words();

/// Upper bound on lane_words — lets the models keep per-window lane groups
/// in fixed-size stack buffers inside their hot sweeps.
inline constexpr int kMaxLaneWords = 16;

/// In-place transpose of a 64x64 bit matrix.  block[i] is row i; bit j of
/// row i moves to bit i of row j.  Dispatches through the plane-kernel layer.
void transpose_64x64(std::uint64_t block[64]);

/// Transposes `count` (<= 64) width-bit samples into lane word `lane_word`
/// of a plane array with `lane_words` words per bit:
/// planes[bit * lane_words + lane_word] bit j = samples[j].bit(bit) for
/// j < count, 0 for j >= count.  `planes` must hold width * lane_words words.
void transpose_to_planes(const ApInt* samples, int count, int width, std::uint64_t* planes,
                         int lane_words = 1, int lane_word = 0);

/// Copies an already-transposed 64x64 block (rows = bits of limb `limb`)
/// into lane word `lane_word` of the plane array of a `width`-bit layout,
/// dropping rows beyond the width.  Shared by transpose_to_planes and the
/// operand sources' direct raw-limb fill paths.
void block_to_planes(const std::uint64_t block[64], int limb, int width,
                     std::uint64_t* planes, int lane_words = 1, int lane_word = 0);

/// Reads lane `lane` of a plane array back into an ApInt (the inverse of
/// transpose_to_planes for one sample; tests/diagnostics).  Throws when
/// `lane` is outside [0, 64 * lane_words).
[[nodiscard]] ApInt plane_lane(const std::uint64_t* planes, int width, int lane,
                               int lane_words = 1);

/// 64 * lane_words operand pairs in bit-plane form, ready for word-parallel
/// evaluation.  Plane storage is 64-byte aligned.
class BitSlicedBatch {
 public:
  explicit BitSlicedBatch(int width, int lane_words = 1);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int lane_words() const { return lane_words_; }
  /// Samples per batch: 64 * lane_words().
  [[nodiscard]] int lanes() const { return kBatchLanes * lane_words_; }

  [[nodiscard]] const std::uint64_t* a() const { return a_.data(); }
  [[nodiscard]] const std::uint64_t* b() const { return b_.data(); }
  [[nodiscard]] std::uint64_t* a() { return a_.data(); }
  [[nodiscard]] std::uint64_t* b() { return b_.data(); }

  /// Loads operand pairs row-wise (sample j = (a[j], b[j])); pairs beyond
  /// `count` are zero.  Both vectors must have the same size <= lanes().
  void load(const std::vector<ApInt>& a, const std::vector<ApInt>& b);

  /// Sample `lane` reconstructed as an ApInt pair (tests/diagnostics).
  [[nodiscard]] std::pair<ApInt, ApInt> lane(int lane) const;

 private:
  int width_;
  int lane_words_;
  planeops::PlaneVec a_;  // a_[bit * lane_words + w] = plane word w of bit `bit`
  planeops::PlaneVec b_;
};

/// Word-level Kogge-Stone prefix over bit-planes with `lane_words` words per
/// bit: given per-bit generate and propagate planes g/p (each n * lane_words
/// words), writes carry[bit] = carry *out* of that bit assuming carry-in 0,
/// independently in each lane.  This is the batch pipeline's exact-adder
/// reference; the heavy lifting dispatches through planeops::kogge_stone.
/// `carry` must hold n * lane_words words and may not alias g or p.
/// `pp_scratch` is the group-propagate working array — callers keep one per
/// evaluation state so the hot loop never allocates; it is resized as needed
/// and clobbered.
void kogge_stone_carries(const std::uint64_t* g, const std::uint64_t* p, int n,
                         int lane_words, std::uint64_t* carry,
                         planeops::PlaneVec& pp_scratch);

}  // namespace vlcsa::arith
