#pragma once
// Shared helpers for netlist-vs-behavioral equivalence testing.  The
// bit-sliced simulator evaluates 64 random vectors per pass, so checking a
// netlist against the ApInt reference over a few thousand vectors is cheap
// enough for unit tests.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"

namespace vlcsa::testutil {

using arith::ApInt;

/// Loads 64 operand pairs into the "a[i]"/"b[i]" input ports of `sim`,
/// via the same 64x64 bit-matrix transpose the batch pipeline uses
/// (arith/bitslice.hpp): simulator input words ARE bit-planes.
inline void load_operands(netlist::Simulator& sim, const std::vector<ApInt>& a,
                          const std::vector<ApInt>& b, int width) {
  arith::BitSlicedBatch batch(width);
  batch.load(a, b);
  for (int bit = 0; bit < width; ++bit) {
    sim.set_input("a[" + std::to_string(bit) + "]", batch.a()[bit]);
    sim.set_input("b[" + std::to_string(bit) + "]", batch.b()[bit]);
  }
}

/// Reads back vector `v` of an indexed output bus ("<base>[i]").
inline ApInt read_bus(const netlist::Simulator& sim, const std::string& base, int width,
                      std::size_t v) {
  ApInt out(width);
  for (int bit = 0; bit < width; ++bit) {
    const std::uint64_t word = sim.output(base + "[" + std::to_string(bit) + "]");
    out.set_bit(bit, (word >> v) & 1);
  }
  return out;
}

/// Checks that a netlist with ports a[i], b[i] (+ optional cin), sum[i],
/// cout implements exact addition on `rounds` x 64 random vectors.
inline void check_adder_netlist(const netlist::Netlist& nl, int width, bool with_cin,
                                int rounds = 4, std::uint64_t seed = 1) {
  netlist::Simulator sim(nl);
  vlcsa::arith::BlockRng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::vector<ApInt> a, b;
    for (int v = 0; v < 64; ++v) {
      a.push_back(ApInt::random(width, rng));
      b.push_back(ApInt::random(width, rng));
    }
    std::uint64_t cin_word = rng();
    load_operands(sim, a, b, width);
    if (with_cin) sim.set_input("cin", cin_word);
    sim.run();
    for (std::size_t v = 0; v < 64; ++v) {
      const bool cin = with_cin && ((cin_word >> v) & 1);
      const auto expected = ApInt::add(a[v], b[v], cin);
      const ApInt sum = read_bus(sim, "sum", width, v);
      ASSERT_EQ(sum, expected.sum) << nl.name() << " vector " << v;
      ASSERT_EQ(((sim.output("cout") >> v) & 1) != 0, expected.carry_out)
          << nl.name() << " cout, vector " << v;
    }
  }
}

}  // namespace vlcsa::testutil
