// Figs 7.6 / 7.7 — delay and area of the SCSA 1 speculative adder vs the
// DesignWare-substitute baseline, at both published error-rate targets
// (0.01% and 0.25%, Table 7.4 parameters).

#include <iostream>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Figures 7.6 / 7.7",
                        "SCSA 1 speculative adder vs DesignWare-substitute: delay [tau] "
                        "and area [inv] at the 0.01% / 0.25% design points.");

  harness::Table delay({"n", "DesignWare", "SCSA @0.01%", "vs DW", "SCSA @0.25%", "vs DW"});
  harness::Table area({"n", "DesignWare", "SCSA @0.01%", "vs DW", "SCSA @0.25%", "vs DW"});
  for (const int n : {64, 128, 256, 512}) {
    adders::DesignWareChoice choice;
    const auto dw = harness::synthesize(adders::build_designware_adder(n, &choice));
    const int k01 = spec::min_window_for_error_rate(n, 1e-4);
    const int k25 = spec::min_window_for_error_rate(n, 2.5e-3);
    const auto s01 = harness::synthesize(
        spec::build_scsa_netlist(spec::ScsaConfig{n, k01}, spec::ScsaVariant::kScsa1));
    const auto s25 = harness::synthesize(
        spec::build_scsa_netlist(spec::ScsaConfig{n, k25}, spec::ScsaVariant::kScsa1));
    delay.add_row({std::to_string(n) + " (DW=" + to_string(choice.winner) + ")",
                   harness::fmt_fixed(dw.delay, 1), harness::fmt_fixed(s01.delay, 1),
                   harness::fmt_delta_pct(s01.delay, dw.delay),
                   harness::fmt_fixed(s25.delay, 1),
                   harness::fmt_delta_pct(s25.delay, dw.delay)});
    area.add_row({std::to_string(n), harness::fmt_fixed(dw.area, 0),
                  harness::fmt_fixed(s01.area, 0), harness::fmt_delta_pct(s01.area, dw.area),
                  harness::fmt_fixed(s25.area, 0),
                  harness::fmt_delta_pct(s25.area, dw.area)});
  }
  std::cout << "Fig 7.6 — delay:\n";
  delay.print(std::cout);
  std::cout << "\nFig 7.7 — area:\n";
  area.print(std::cout);
  std::cout << "\nPaper shape: SCSA 1 ~10% faster than DesignWare at both error rates;\n"
               "area up to 43% (0.01%) / 21-56% (0.25%) smaller, with the relaxed\n"
               "error-rate target buying additional area (Ch. 7.5.1).\n";
  return 0;
}
