#include "speculative/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "arith/apint.hpp"
#include "speculative/scsa.hpp"
#include "speculative/vlsa.hpp"

namespace vlcsa::spec {
namespace {

TEST(ScsaErrorModel, MatchesHandComputedValues) {
  // n = 256, k = 16 is the paper's worked example: P_err ~ 0.01%.
  // (m-1) * 2^-(k+1) * (1 - 2^-k) = 15 * 2^-17 * (1 - 2^-16).
  const double expected = 15.0 * std::ldexp(1.0, -17) * (1.0 - std::ldexp(1.0, -16));
  EXPECT_DOUBLE_EQ(scsa_error_rate(256, 16), expected);
  EXPECT_NEAR(scsa_error_rate(256, 16), 1.14e-4, 1e-6);
}

TEST(ScsaErrorModel, DecreasesInWindowSize) {
  for (int k = 4; k < 20; ++k) {
    EXPECT_GT(scsa_error_rate(256, k), scsa_error_rate(256, k + 1));
  }
}

TEST(ScsaErrorModel, IncreasesInWidth) {
  EXPECT_LT(scsa_error_rate(64, 12), scsa_error_rate(128, 12));
  EXPECT_LT(scsa_error_rate(128, 12), scsa_error_rate(512, 12));
}

TEST(ScsaErrorModel, SingleWindowIsErrorFree) {
  EXPECT_DOUBLE_EQ(scsa_error_rate(16, 16), 0.0);
  EXPECT_DOUBLE_EQ(scsa_exact_error_rate(16, 16), 0.0);
}

TEST(ScsaErrorModel, ExactLayoutAccountsForSmallFirstWindow) {
  // With n % k != 0 the first window is smaller, which changes both its
  // group-generate probability and the pair sum slightly.
  const double printed = scsa_error_rate(64, 14);
  const double exact_layout = scsa_error_rate_exact_layout(64, 14);
  EXPECT_NE(printed, exact_layout);
  EXPECT_NEAR(printed, exact_layout, 0.3 * printed);
}

TEST(ScsaErrorModel, ExactDpIsBelowUnionBound) {
  for (const int n : {64, 128, 256}) {
    for (const int k : {8, 10, 12, 14}) {
      const double exact = scsa_exact_error_rate(n, k);
      const double bound = scsa_error_rate_exact_layout(n, k);
      EXPECT_LE(exact, bound * (1.0 + 1e-12)) << "n=" << n << " k=" << k;
      EXPECT_GT(exact, 0.5 * bound) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ScsaErrorModel, ExactDpMatchesMonteCarloNominalRate) {
  // The DP models P(some window pair is generate-then-propagate) == P(ERR0).
  const int n = 64, k = 6;
  const ScsaModel model(ScsaConfig{n, k});
  vlcsa::arith::BlockRng rng(123);
  const int samples = 200000;
  int flagged = 0;
  for (int s = 0; s < samples; ++s) {
    const auto a = arith::ApInt::random(n, rng);
    const auto b = arith::ApInt::random(n, rng);
    if (model.evaluate(a, b).err0) ++flagged;
  }
  const double mc = static_cast<double>(flagged) / samples;
  const double dp = scsa_exact_error_rate(n, k);
  EXPECT_NEAR(mc, dp, 4.0 * std::sqrt(dp * (1 - dp) / samples) + 1e-4);
}

TEST(SizingRule, ReproducesTable74Exactly) {
  // Paper Table 7.4: the eight published (n, k) pairs.
  for (const auto& row : published_scsa_parameters()) {
    EXPECT_EQ(min_window_for_error_rate(row.n, 1e-4), row.k_rate_01) << "n = " << row.n;
    EXPECT_EQ(min_window_for_error_rate(row.n, 2.5e-3), row.k_rate_25) << "n = " << row.n;
  }
}

TEST(SizingRule, RejectsNonPositiveTarget) {
  EXPECT_THROW((void)min_window_for_error_rate(64, 0.0), std::invalid_argument);
  EXPECT_THROW((void)min_window_for_error_rate(64, -1.0), std::invalid_argument);
}

TEST(SizingRule, MonotoneInTarget) {
  EXPECT_GE(min_window_for_error_rate(256, 1e-5), min_window_for_error_rate(256, 1e-4));
  EXPECT_GE(min_window_for_error_rate(256, 1e-4), min_window_for_error_rate(256, 1e-2));
}

// ---- VLSA -------------------------------------------------------------------

TEST(VlsaErrorModel, UnionBoundShape) {
  EXPECT_DOUBLE_EQ(vlsa_error_rate(64, 64), 0.0);
  EXPECT_NEAR(vlsa_error_rate(64, 17), 47.0 * std::ldexp(1.0, -18), 1e-12);
  EXPECT_GT(vlsa_error_rate(128, 17), vlsa_error_rate(64, 17));
  EXPECT_GT(vlsa_error_rate(64, 16), vlsa_error_rate(64, 17));
}

TEST(VlsaErrorModel, ExactDpIsBelowUnionBound) {
  for (const int n : {32, 64, 128}) {
    for (const int l : {6, 8, 10, 12}) {
      EXPECT_LE(vlsa_exact_error_rate(n, l), vlsa_error_rate(n, l)) << n << "/" << l;
      EXPECT_GT(vlsa_exact_error_rate(n, l), 0.0);
    }
  }
}

TEST(VlsaErrorModel, ExactDpMatchesBehavioralMonteCarlo) {
  const int n = 48, l = 6;
  const VlsaModel model(VlsaConfig{n, l});
  vlcsa::arith::BlockRng rng(321);
  const int samples = 200000;
  int wrong = 0;
  for (int s = 0; s < samples; ++s) {
    const auto a = arith::ApInt::random(n, rng);
    const auto b = arith::ApInt::random(n, rng);
    if (!model.evaluate(a, b).spec_correct()) ++wrong;
  }
  const double mc = static_cast<double>(wrong) / samples;
  const double dp = vlsa_exact_error_rate(n, l);
  EXPECT_NEAR(mc, dp, 4.0 * std::sqrt(dp * (1 - dp) / samples) + 1e-4);
}

TEST(VlsaErrorModel, PublishedChainLengths) {
  EXPECT_EQ(vlsa_published_chain_length(64), 17);
  EXPECT_EQ(vlsa_published_chain_length(128), 18);
  EXPECT_EQ(vlsa_published_chain_length(256), 20);
  EXPECT_EQ(vlsa_published_chain_length(512), 21);
  EXPECT_THROW((void)vlsa_published_chain_length(100), std::invalid_argument);
}

TEST(VlsaErrorModel, PublishedLengthsAchieveTargetWithinSlack) {
  // Our exact model should agree that [17]'s design points deliver ~0.01%.
  for (const int n : {64, 128, 256, 512}) {
    const int l = vlsa_published_chain_length(n);
    const double rate = vlsa_exact_error_rate(n, l);
    EXPECT_LT(rate, 2.5e-4) << "n = " << n;   // within ~2.5x of 0.01%
    EXPECT_GT(rate, 1e-5) << "n = " << n;     // not absurdly conservative
  }
}

TEST(VlsaErrorModel, SizingSearchIsConsistent) {
  for (const int n : {64, 128}) {
    const int l = min_vlsa_chain_for_error_rate(n, 1e-4);
    EXPECT_LE(vlsa_exact_error_rate(n, l), 1.25e-4);
    if (l > 1) {
      EXPECT_GT(vlsa_exact_error_rate(n, l - 1), 1.25e-4);
    }
  }
}

TEST(ErrorModels, RejectBadParameters) {
  EXPECT_THROW((void)scsa_error_rate(0, 4), std::invalid_argument);
  EXPECT_THROW((void)scsa_error_rate(64, 0), std::invalid_argument);
  EXPECT_THROW((void)vlsa_error_rate(0, 4), std::invalid_argument);
  EXPECT_THROW((void)vlsa_exact_error_rate(64, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlcsa::spec
