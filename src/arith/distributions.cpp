#include "arith/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace vlcsa::arith {

std::pair<ApInt, ApInt> UniformUnsignedSource::next(std::mt19937_64& rng) {
  return {ApInt::random(width(), rng), ApInt::random(width(), rng)};
}

namespace {

ApInt random_signed_magnitude(int width, std::mt19937_64& rng) {
  // Uniform magnitude in [0, 2^(width-1)) with a random sign bit.
  ApInt mag = ApInt::random(width, rng);
  mag.set_bit(width - 1, false);
  const bool negative = (rng() & 1) != 0;
  return negative ? mag.negated() : mag;
}

}  // namespace

std::pair<ApInt, ApInt> UniformTwosSource::next(std::mt19937_64& rng) {
  return {random_signed_magnitude(width(), rng), random_signed_magnitude(width(), rng)};
}

ApInt encode_signed_sample(int width, double sample) {
  const double rounded = std::nearbyint(sample);
  if (width >= 64) {
    // sigma = 2^32 keeps samples far inside int64 range (8 sigma < 2^36).
    const auto v = static_cast<std::int64_t>(rounded);
    return ApInt::from_i64(width, v);
  }
  const double lo = -std::ldexp(1.0, width - 1);
  const double hi = std::ldexp(1.0, width - 1) - 1.0;
  const double clamped = std::fmin(std::fmax(rounded, lo), hi);
  return ApInt::from_i64(width, static_cast<std::int64_t>(clamped));
}

ApInt encode_unsigned_sample(int width, double sample) {
  const double mag = std::fabs(std::nearbyint(sample));
  if (width >= 64) {
    return ApInt::from_u64(width, static_cast<std::uint64_t>(mag));
  }
  const double hi = std::ldexp(1.0, width) - 1.0;
  const double clamped = std::fmin(mag, hi);
  return ApInt::from_u64(width, static_cast<std::uint64_t>(clamped));
}

std::pair<ApInt, ApInt> GaussianUnsignedSource::next(std::mt19937_64& rng) {
  return {encode_unsigned_sample(width(), dist_(rng)),
          encode_unsigned_sample(width(), dist_(rng))};
}

std::pair<ApInt, ApInt> GaussianTwosSource::next(std::mt19937_64& rng) {
  return {encode_signed_sample(width(), dist_(rng)), encode_signed_sample(width(), dist_(rng))};
}

std::string to_string(InputDistribution dist) {
  switch (dist) {
    case InputDistribution::kUniformUnsigned:
      return "uniform-unsigned";
    case InputDistribution::kUniformTwos:
      return "uniform-twos-complement";
    case InputDistribution::kGaussianUnsigned:
      return "gaussian-unsigned";
    case InputDistribution::kGaussianTwos:
      return "gaussian-twos-complement";
  }
  throw std::logic_error("unknown InputDistribution");
}

std::unique_ptr<OperandSource> make_source(InputDistribution dist, int width,
                                           GaussianParams params) {
  switch (dist) {
    case InputDistribution::kUniformUnsigned:
      return std::make_unique<UniformUnsignedSource>(width);
    case InputDistribution::kUniformTwos:
      return std::make_unique<UniformTwosSource>(width);
    case InputDistribution::kGaussianUnsigned:
      return std::make_unique<GaussianUnsignedSource>(width, params);
    case InputDistribution::kGaussianTwos:
      return std::make_unique<GaussianTwosSource>(width, params);
  }
  throw std::logic_error("unknown InputDistribution");
}

}  // namespace vlcsa::arith
