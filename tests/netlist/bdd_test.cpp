#include "netlist/bdd.hpp"

#include <gtest/gtest.h>

#include <random>

namespace vlcsa::netlist {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.node_count(), 2u);
  const auto x0 = mgr.var(0);
  const auto x0_again = mgr.var(0);
  EXPECT_EQ(x0, x0_again);  // unique table sharing
  EXPECT_THROW((void)mgr.var(3), std::out_of_range);
  EXPECT_THROW((void)mgr.var(-1), std::out_of_range);
}

TEST(Bdd, OperatorsMatchTruthTables) {
  BddManager mgr(2);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  using BoolOp = bool (*)(bool, bool);
  const std::vector<std::pair<BddManager::NodeRef, BoolOp>> ops = {
      {mgr.and_(a, b), [](bool x, bool y) { return x && y; }},
      {mgr.or_(a, b), [](bool x, bool y) { return x || y; }},
      {mgr.xor_(a, b), [](bool x, bool y) { return x != y; }},
  };
  for (bool x : {false, true}) {
    for (bool y : {false, true}) {
      const std::vector<bool> assign{x, y};
      for (const auto& [f, ref] : ops) {
        EXPECT_EQ(mgr.evaluate(f, assign), ref(x, y));
      }
      EXPECT_EQ(mgr.evaluate(mgr.not_(a), assign), !x);
      EXPECT_EQ(mgr.evaluate(mgr.ite(a, b, mgr.not_(b)), assign), x ? y : !y);
    }
  }
}

TEST(Bdd, CanonicalFormDetectsTautologies) {
  BddManager mgr(2);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  // a|b == ~(~a & ~b): De Morgan collapses to the same node.
  EXPECT_EQ(mgr.or_(a, b), mgr.not_(mgr.and_(mgr.not_(a), mgr.not_(b))));
  EXPECT_EQ(mgr.xor_(a, a), BddManager::kFalse);
  EXPECT_EQ(mgr.or_(a, mgr.not_(a)), BddManager::kTrue);
}

TEST(Bdd, FindSatisfying) {
  BddManager mgr(4);
  const auto f =
      mgr.and_(mgr.var(0), mgr.and_(mgr.not_(mgr.var(1)), mgr.var(3)));
  const auto assignment = mgr.find_satisfying(f);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_TRUE(mgr.evaluate(f, *assignment));
  EXPECT_TRUE((*assignment)[0]);
  EXPECT_FALSE((*assignment)[1]);
  EXPECT_TRUE((*assignment)[3]);
  EXPECT_FALSE(mgr.find_satisfying(BddManager::kFalse).has_value());
}

TEST(Bdd, CountSatisfying) {
  BddManager mgr(3);
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(BddManager::kTrue), 8.0);
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(BddManager::kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(mgr.var(1)), 4.0);
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(mgr.and_(mgr.var(0), mgr.var(2))), 2.0);
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(mgr.xor_(mgr.var(0), mgr.var(1))), 4.0);
}

TEST(Bdd, MajorityFunctionSatCount) {
  // Majority of 5: C(5,3)+C(5,4)+C(5,5) = 16 satisfying assignments.
  BddManager mgr(5);
  // Build via dynamic programming over "at least t of the first i vars".
  std::vector<BddManager::NodeRef> prev(6, BddManager::kFalse);
  prev[0] = BddManager::kTrue;
  for (int i = 0; i < 5; ++i) {
    std::vector<BddManager::NodeRef> cur(6, BddManager::kFalse);
    for (int t = 0; t <= 5; ++t) {
      const auto with = t > 0 ? prev[static_cast<std::size_t>(t - 1)] : BddManager::kTrue;
      cur[static_cast<std::size_t>(t)] =
          mgr.ite(mgr.var(i), with, prev[static_cast<std::size_t>(t)]);
    }
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(mgr.count_satisfying(prev[3]), 16.0);
}

TEST(Bdd, RandomExpressionsAgreeWithBruteForce) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 5;
    BddManager mgr(vars);
    // Random expression DAG over refs.
    std::vector<BddManager::NodeRef> pool;
    for (int v = 0; v < vars; ++v) pool.push_back(mgr.var(v));
    // Parallel reference evaluation over all 32 assignments as bitmasks.
    std::vector<std::uint32_t> truth;
    for (int v = 0; v < vars; ++v) {
      std::uint32_t mask = 0;
      for (int m = 0; m < 32; ++m) {
        if ((m >> v) & 1) mask |= 1u << m;
      }
      truth.push_back(mask);
    }
    for (int step = 0; step < 30; ++step) {
      const std::size_t i = rng() % pool.size();
      const std::size_t j = rng() % pool.size();
      switch (rng() % 4) {
        case 0:
          pool.push_back(mgr.and_(pool[i], pool[j]));
          truth.push_back(truth[i] & truth[j]);
          break;
        case 1:
          pool.push_back(mgr.or_(pool[i], pool[j]));
          truth.push_back(truth[i] | truth[j]);
          break;
        case 2:
          pool.push_back(mgr.xor_(pool[i], pool[j]));
          truth.push_back(truth[i] ^ truth[j]);
          break;
        default:
          pool.push_back(mgr.not_(pool[i]));
          truth.push_back(~truth[i]);
          break;
      }
    }
    for (int m = 0; m < 32; ++m) {
      std::vector<bool> assignment(vars);
      for (int v = 0; v < vars; ++v) assignment[static_cast<std::size_t>(v)] = (m >> v) & 1;
      EXPECT_EQ(mgr.evaluate(pool.back(), assignment), ((truth.back() >> m) & 1) != 0);
    }
  }
}

TEST(Bdd, NodeLimitThrows) {
  BddManager mgr(40);
  mgr.set_node_limit(64);
  // XOR chains grow linearly; hitting 64 nodes is immediate.
  EXPECT_THROW(
      {
        auto f = mgr.var(0);
        for (int v = 1; v < 40; ++v) f = mgr.xor_(f, mgr.var(v));
      },
      std::runtime_error);
}

}  // namespace
}  // namespace vlcsa::netlist
