#include "harness/montecarlo.hpp"

namespace vlcsa::harness {

ErrorRateResult run_vlcsa(const spec::VlcsaConfig& config, OperandSource& source,
                          std::uint64_t samples, std::uint64_t seed) {
  const spec::VlcsaModel model(config);
  std::mt19937_64 rng(seed);
  ErrorRateResult out;
  out.samples = samples;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto [a, b] = source.next(rng);
    const auto step = model.step(a, b);
    const auto& ev = step.eval;

    const bool primary_wrong = config.variant == spec::ScsaVariant::kScsa1
                                   ? !ev.spec0_correct()
                                   : !ev.either_correct();
    if (primary_wrong) ++out.actual_errors;
    if (step.stalled) ++out.nominal_errors;
    if (primary_wrong && !step.stalled) ++out.false_negatives;
    if (!ev.either_correct()) ++out.either_wrong;
    if (step.result != ev.exact || step.cout != ev.exact_cout) ++out.emitted_wrong;
    out.total_cycles += static_cast<std::uint64_t>(step.cycles);
  }
  return out;
}

ErrorRateResult run_vlsa(const spec::VlsaConfig& config, OperandSource& source,
                         std::uint64_t samples, std::uint64_t seed) {
  const spec::VlsaModel model(config);
  std::mt19937_64 rng(seed);
  ErrorRateResult out;
  out.samples = samples;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto [a, b] = source.next(rng);
    const auto ev = model.evaluate(a, b);
    const bool wrong = !ev.spec_correct();
    if (wrong) ++out.actual_errors;
    if (ev.err) ++out.nominal_errors;
    if (wrong && !ev.err) ++out.false_negatives;
    if (wrong) ++out.either_wrong;
    // Recovery is exact: emitted result is spec when !err else recovered.
    const bool emitted_wrong = ev.err ? false : wrong;
    if (emitted_wrong) ++out.emitted_wrong;
    out.total_cycles += ev.err ? 2 : 1;
  }
  return out;
}

EmpiricalWindowSearch find_window_for_nominal_rate(int width, spec::ScsaVariant variant,
                                                   arith::InputDistribution dist,
                                                   arith::GaussianParams params, double target,
                                                   double slack, std::uint64_t samples,
                                                   std::uint64_t seed, int k_lo, int k_hi) {
  EmpiricalWindowSearch best;
  for (int k = k_lo; k <= k_hi; ++k) {
    auto source = arith::make_source(dist, width, params);
    const spec::VlcsaConfig config{width, k, variant};
    const auto result = run_vlcsa(config, *source, samples, seed);
    if (result.nominal_rate() <= slack * target) {
      best.window = k;
      best.result = result;
      return best;
    }
    // Keep the last attempt so callers can report the near-miss.
    best.window = k;
    best.result = result;
  }
  return best;
}

}  // namespace vlcsa::harness
