#pragma once
// Parallel-prefix machinery shared by every carry-computing structure in the
// library: the traditional prefix adders (Kogge-Stone, Brent-Kung, Sklansky,
// Han-Carlson), the SCSA window adders (which run a prefix tree *inside*
// each window, eqs. 4.3–4.6), the error-recovery prefix adder over window
// group signals (Fig 5.2), and the truncated prefix trees of the VLSA
// baseline.

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlcsa::adders {

using netlist::Netlist;
using netlist::Signal;

/// A (generate, propagate) pair over some bit span.
struct GP {
  Signal g;
  Signal p;
};

/// The prefix operator: (G,P) = (hi) o (lo) covering hi-span ++ lo-span.
///   G = hi.g | (hi.p & lo.g),  P = hi.p & lo.p
/// Gray cells (nodes whose P output is never consumed) are not special-cased
/// here; dead-gate elimination removes the unused P logic.
[[nodiscard]] GP combine(Netlist& nl, const GP& hi, const GP& lo);

enum class PrefixTopology {
  kKoggeStone,  // minimal depth, maximal wiring/area
  kBrentKung,   // minimal area, ~2x depth
  kSklansky,    // minimal depth, high fanout
  kHanCarlson,  // Kogge-Stone on odd bits + final ripple level
};

[[nodiscard]] const char* to_string(PrefixTopology topology);

/// All supported topologies (for parameterized tests and the DesignWare
/// best-of search).
[[nodiscard]] std::span<const PrefixTopology> all_prefix_topologies();

/// Computes inclusive prefixes: out[i] = (G over [0..i], P over [0..i]) from
/// per-bit leaves (leaves[i] covers exactly bit i).
[[nodiscard]] std::vector<GP> build_prefix_network(Netlist& nl, std::vector<GP> leaves,
                                                   PrefixTopology topology);

/// Per-bit propagate/generate preprocessing: p = a ^ b, g = a & b.
[[nodiscard]] std::vector<GP> make_pg_leaves(Netlist& nl, std::span<const Signal> a,
                                             std::span<const Signal> b);

/// Result of a complete prefix addition over existing signals.
struct PrefixSums {
  std::vector<Signal> sum;
  Signal cout;
  std::vector<GP> prefix;     // inclusive prefixes (post-network)
  std::vector<Signal> p_bit;  // per-bit propagate (pre-network), for reuse
};

/// Builds a full prefix adder over existing operand signals.  `cin` may be
/// invalid (treated as constant 0); it is folded into the bit-0 leaf
/// (g0' = g0 | p0&cin) so the network itself is cin-agnostic.
[[nodiscard]] PrefixSums prefix_sum(Netlist& nl, std::span<const Signal> a,
                                    std::span<const Signal> b, Signal cin,
                                    PrefixTopology topology);

/// The SCSA window-adder core (Fig 4.2 / eqs. 4.5–4.6): one shared prefix
/// tree produces both conditional results of a carry-select window:
///   sum0[j] = p_j ^  G[j-1:0]           (window carry-in = 0)
///   sum1[j] = p_j ^ (G[j-1:0] | P[j-1:0])   (window carry-in = 1)
///   cout0   = G[k-1:0]      (the window's group-generate signal)
///   cout1   = G[k-1:0] | P[k-1:0]
struct ConditionalSums {
  std::vector<Signal> sum0;
  std::vector<Signal> sum1;
  Signal cout0;    // == group_g
  Signal cout1;    // group_g | group_p
  Signal group_g;  // window group generate
  Signal group_p;  // window group propagate
  /// Functionally identical duplicate of group_g built as the serial
  /// expansion g[k-1] | (p[k-1] & G[k-2:0]).  group_g drives the k-wide
  /// carry-select mux bank (and so sits behind a fanout buffer chain);
  /// timing-critical side consumers — the ERR0 detector — tap this lightly
  /// loaded copy instead, the standard load-splitting move a delay-driven
  /// synthesis run makes.
  Signal group_g_light;
};

[[nodiscard]] ConditionalSums conditional_window_sums(Netlist& nl, std::span<const Signal> a,
                                                      std::span<const Signal> b,
                                                      PrefixTopology topology);

}  // namespace vlcsa::adders
