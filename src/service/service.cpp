#include "service/service.hpp"

#include <chrono>
#include <exception>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/engine.hpp"
#include "harness/experiments.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"

namespace vlcsa::service {

/// Per-request observability state, threaded from handle_line through the
/// handlers: the span collector, the trace id, and the fields the trace and
/// access logs report.  One instance per request line, stack-owned by
/// handle_line — never shared between requests.
struct ExperimentService::RequestContext {
  RequestTrace trace;
  std::string trace_id;        // request-supplied, else generated in finalize
  bool echo = false;           // "trace": true — echo spans in the reply
  std::string origin;          // caller-declared traffic origin (e.g. "sweep")
  std::string experiment;      // run requests: the experiment name
  std::string cache;           // run requests: hit-memory/hit-disk/miss/coalesced
  const char* code = nullptr;  // error code when the reply is an error
  std::string profile_json;    // rendered RunProfile (traced engine runs only)
};

namespace {

using harness::JsonObject;
using harness::JsonValue;

/// Machine-readable error classes (the "code" field of error responses);
/// DESIGN.md's protocol reference documents the full set.
constexpr const char* kCodeBadRequest = "bad-request";
constexpr const char* kCodeUnknownRequest = "unknown-request";
constexpr const char* kCodeUnknownExperiment = "unknown-experiment";
constexpr const char* kCodeTimeout = "timeout";
constexpr const char* kCodeInternal = "internal";
constexpr const char* kCodeDraining = "draining";

/// Upper bound on any request-supplied timeout_ms (24 hours): large enough
/// for any real run, small enough to survive the milliseconds-as-int cast —
/// an overflowing value must be rejected, never silently disable the
/// deadline.
constexpr std::uint64_t kMaxTimeoutMs = 86'400'000;

ExperimentService::Reply error_reply(ExperimentService::RequestContext& ctx,
                                     const std::string& message,
                                     const char* code = kCodeBadRequest) {
  ctx.code = code;  // surfaces in the access/trace log line for this request
  JsonObject response;
  response.add("status", "error");
  response.add("code", code);
  response.add("error", message);
  return {response.render_line(), false, false};
}

/// Strictness: every member of the request object must be expected for its
/// request type — a typo'd field is an error, never silently ignored.
std::string check_fields(const JsonValue& request,
                         std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : request.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) return "unknown field '" + key + "' for this request";
  }
  return {};
}

/// Optional unsigned-integer field; "" or an error message.
std::string read_u64_field(const JsonValue& request, const char* name, std::uint64_t& out,
                           bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (!field->to_u64(out)) {
    return std::string("field '") + name + "' must be a non-negative integer";
  }
  return {};
}

/// Optional string field; "" or an error message.
std::string read_string_field(const JsonValue& request, const char* name, std::string& out,
                              bool& given) {
  const JsonValue* field = request.find(name);
  given = field != nullptr;
  if (field == nullptr) return {};
  if (field->kind() != JsonValue::Kind::kString) {
    return std::string("field '") + name + "' must be a string";
  }
  out = field->as_string();
  return {};
}

/// Reads the observability envelope fields every top-level request accepts:
/// "trace" (bool — echo the span tree in the reply), "trace_id" (string —
/// caller-supplied correlation id) and "origin" (string — what kind of
/// caller this traffic comes from, e.g. "sweep"; logged, and counted in the
/// sweep metrics for run traffic).  "" or an error message.
std::string read_trace_envelope(const JsonValue& request,
                                ExperimentService::RequestContext& ctx) {
  const JsonValue* flag = request.find("trace");
  if (flag != nullptr) {
    if (flag->kind() != JsonValue::Kind::kBool) return "field 'trace' must be a boolean";
    ctx.echo = flag->as_bool();
    if (ctx.echo) ctx.trace.enable();
  }
  const JsonValue* id = request.find("trace_id");
  if (id != nullptr) {
    if (id->kind() != JsonValue::Kind::kString) return "field 'trace_id' must be a string";
    ctx.trace_id = id->as_string();
    if (ctx.trace_id.empty()) return "field 'trace_id' must be non-empty";
  }
  const JsonValue* origin = request.find("origin");
  if (origin != nullptr) {
    if (origin->kind() != JsonValue::Kind::kString) return "field 'origin' must be a string";
    ctx.origin = origin->as_string();
    if (ctx.origin.empty()) return "field 'origin' must be non-empty";
  }
  return {};
}

/// ["a", "b", ...] — string-array rendering for list responses.
std::string render_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + harness::json_escape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

/// [{...}, {...}] — array of pre-rendered objects (run-batch results).
std::string render_object_array(const std::vector<std::string>& rendered) {
  std::string out = "[";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i != 0) out += ", ";
    out += rendered[i];
  }
  out += "]";
  return out;
}

const char* tier_name(ResultCache::Tier tier) {
  switch (tier) {
    case ResultCache::Tier::kMemory: return "hit-memory";
    case ResultCache::Tier::kDisk: return "hit-disk";
    case ResultCache::Tier::kMiss: return "miss";
  }
  return "?";
}

/// Stream version of the Gaussian operand streams.  Bumped whenever the
/// Gaussian variate stream changes incompatibly — v2 is the move of
/// GaussianUnsignedSource/GaussianTwosSource from per-sample
/// std::normal_distribution onto the block ziggurat
/// (arith::GaussianBlockSampler), which redefines every Gaussian-input
/// counter.  Applies to error-rate experiments AND distribution chain
/// profiles with a Gaussian dist; uniform streams were untouched by that
/// swap and stay unversioned (keys unchanged).
constexpr const char* kGaussStreamVersion = "gauss-rng-v2";

bool gaussian_dist(arith::InputDistribution dist) {
  return dist == arith::InputDistribution::kGaussianUnsigned ||
         dist == arith::InputDistribution::kGaussianTwos;
}

// The cached result record: a pure function of (experiment, samples, seed,
// eval path) — no wall time, no thread count — so a fresh recomputation at
// any --threads setting reproduces it byte-for-byte.  The embedded
// experiment/samples/seed/eval_path fields are what the disk tier validates
// against the key (cache.hpp).
std::string error_rate_record(const harness::ErrorRateExperiment& experiment,
                              std::uint64_t seed, harness::EvalPath path,
                              const harness::ErrorRateResult& result) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "error-rate");
  record.add("model", to_string(experiment.model));
  record.add("width", experiment.width);
  record.add("window", experiment.window);
  record.add("distribution", arith::to_string(experiment.dist));
  record.add("samples", result.samples);
  record.add("seed", seed);
  record.add("eval_path", to_string(path));
  // Gaussian experiments are stream-versioned (see kGaussStreamVersion):
  // records from an incompatible sampler era must miss, not hit stale.
  if (gaussian_dist(experiment.dist)) record.add("stream_version", kGaussStreamVersion);
  record.add("actual_errors", result.actual_errors);
  record.add("nominal_errors", result.nominal_errors);
  record.add("false_negatives", result.false_negatives);
  record.add("either_wrong", result.either_wrong);
  record.add("emitted_wrong", result.emitted_wrong);
  record.add("total_cycles", result.total_cycles);
  record.add("actual_rate", result.actual_rate());
  record.add("nominal_rate", result.nominal_rate());
  record.add("either_wrong_rate", result.either_wrong_rate());
  record.add("avg_cycles", result.average_cycles());
  return record.render_line();
}

/// Stream version of the crypto chain-profile workloads.  Bumped whenever
/// their internal draw streams change incompatibly — v2 is the move of
/// run_crypto_workload's seeding onto the shared seed_seq discipline
/// (arith::make_stream_rng) that shipped with the BlockRng subsystem.
/// Distribution profiles and every error-rate experiment are sequence-
/// identical across that swap and stay unversioned (keys unchanged).
constexpr const char* kCryptoStreamVersion = "crypto-rng-v2";

std::string chain_profile_record(const harness::ChainProfileExperiment& experiment,
                                 std::uint64_t samples, std::uint64_t seed,
                                 const arith::CarryChainProfiler& profiler) {
  JsonObject record;
  record.add("experiment", experiment.name);
  record.add("kind", "chain-profile");
  record.add("width", experiment.width);
  const bool crypto = experiment.workload == harness::ChainProfileExperiment::Workload::kCrypto;
  record.add("workload", crypto ? "crypto" : "distribution");
  record.add("source",
             crypto ? std::string(to_string(experiment.crypto_kind))
                    : arith::to_string(experiment.dist));
  record.add("samples", samples);
  record.add("seed", seed);
  // Chain profiling has no batched pipeline; key the scalar path so the
  // cache key shape is uniform across both families.
  record.add("eval_path", to_string(harness::EvalPath::kScalar));
  // Crypto workloads are stream-versioned (see kCryptoStreamVersion), and so
  // are Gaussian distribution profiles (see kGaussStreamVersion): records
  // from an incompatible seeding/sampler era must miss, not hit stale.
  if (crypto) {
    record.add("stream_version", kCryptoStreamVersion);
  } else if (gaussian_dist(experiment.dist)) {
    record.add("stream_version", kGaussStreamVersion);
  }
  record.add("additions", profiler.additions());
  record.add("chains", profiler.total());
  record.add("mean_chain_length", profiler.mean_length());
  record.add("fraction_at_least_half_width",
             profiler.fraction_at_least(experiment.width / 2));
  return record.render_line();
}

}  // namespace

/// One validated run request (or run-batch element).
struct ExperimentService::RunSpec {
  std::string experiment;
  std::uint64_t samples = 0;
  bool samples_given = false;
  std::uint64_t seed = 1;
  harness::EvalPath path = harness::EvalPath::kBatched;
  bool path_given = false;
  std::uint64_t timeout_ms = 0;  // request-level override; 0 = not given
  bool timeout_given = false;
};

/// What running one spec produced: either `error` (+ `code`) or a record.
struct ExperimentService::RunOutcome {
  std::string error;  // empty = success
  const char* code = kCodeBadRequest;
  ResultCache::Tier tier = ResultCache::Tier::kMiss;
  bool coalesced = false;
  std::string record;
};

namespace {

/// Parses/validates one run spec's fields.  `allowed` differs between a
/// top-level run request ("request"/"timeout_ms" permitted) and a run-batch
/// element (bare spec only); "" or an error message.
std::string read_run_spec(const JsonValue& request,
                          std::initializer_list<std::string_view> allowed,
                          ExperimentService::RunSpec& out) {
  if (std::string error = check_fields(request, allowed); !error.empty()) return error;
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", out.experiment, given);
      !error.empty()) {
    return error;
  }
  if (!given || out.experiment.empty()) return "run requires field 'experiment'";
  if (std::string error = read_u64_field(request, "samples", out.samples, out.samples_given);
      !error.empty()) {
    return error;
  }
  if (out.samples_given && out.samples == 0) {
    return "field 'samples' must be positive (omit it for the experiment default)";
  }
  if (std::string error = read_u64_field(request, "seed", out.seed, given); !error.empty()) {
    return error;
  }
  std::string path_text;
  if (std::string error = read_string_field(request, "eval_path", path_text, out.path_given);
      !error.empty()) {
    return error;
  }
  if (out.path_given && !harness::parse_eval_path(path_text, out.path)) {
    return "field 'eval_path' must be \"batched\" or \"scalar\"";
  }
  if (std::string error =
          read_u64_field(request, "timeout_ms", out.timeout_ms, out.timeout_given);
      !error.empty()) {
    return error;
  }
  if (out.timeout_given && out.timeout_ms == 0) {
    return "field 'timeout_ms' must be positive (omit it for the server default)";
  }
  if (out.timeout_given && out.timeout_ms > kMaxTimeoutMs) {
    return "field 'timeout_ms' must be at most 86400000 (24 hours)";
  }
  return {};
}

/// Arms the deadline watchdog for one request and guarantees the disarm:
/// run_one rethrows engine/cache failures (and a leader rethrow escapes the
/// handler), so only a destructor reliably unregisters the watchdog entry
/// before the stack-local cancel token it points at dies.
class ArmedDeadline {
 public:
  ArmedDeadline(DeadlineWatchdog& watchdog, DeadlineWatchdog::Clock::time_point start,
                int timeout_ms, std::atomic<bool>* token)
      : watchdog_(watchdog) {
    if (timeout_ms > 0) {
      id_ = watchdog_.arm(start + std::chrono::milliseconds(timeout_ms), token);
      token_ = token;
    }
  }
  ~ArmedDeadline() {
    if (id_ != 0) watchdog_.disarm(id_);
  }
  ArmedDeadline(const ArmedDeadline&) = delete;
  ArmedDeadline& operator=(const ArmedDeadline&) = delete;

  /// The armed token, or nullptr when no deadline applies.
  [[nodiscard]] const std::atomic<bool>* token() const { return token_; }

 private:
  DeadlineWatchdog& watchdog_;
  DeadlineWatchdog::Id id_ = 0;
  std::atomic<bool>* token_ = nullptr;
};

}  // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.memory_entries, config_.cache_max_bytes,
             config_.lease_stale_ms) {
  if (!config_.trace_log.empty()) {
    log_error_ = trace_log_.open(config_.trace_log);
  }
  if (!config_.access_log.empty()) {
    std::string error = access_log_.open(config_.access_log, config_.access_log_max_bytes);
    if (!error.empty()) {
      log_error_ = log_error_.empty() ? std::move(error) : log_error_ + "; " + error;
    }
  }
}

std::vector<std::string> ExperimentService::request_names() {
  return {"run",     "run-batch", "list",         "describe", "cache-stats",
          "metrics", "metrics-prom", "drain",     "shutdown"};
}

void ExperimentService::begin_drain() {
  drain_.begin();
  metrics_.set_draining(true);
}

ExperimentService::Reply ExperimentService::handle_line(const std::string& line) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const ServiceMetrics::InFlight in_flight(metrics_);

  RequestContext ctx;
  // Tracing turns on only when someone wants the spans: a configured
  // --trace-log, or a request carrying "trace"/"trace_id" (strict JSON
  // quotes keys, so the substring test is a safe pre-parse filter — a false
  // positive merely collects spans nobody renders).  When neither holds,
  // every span site below costs a single predictable branch; perf_microbench
  // pins the cached-hit path against that claim.
  if (trace_log_.enabled() || line.find("\"trace") != std::string::npos) {
    ctx.trace.enable();
  }
  const std::size_t root = ctx.trace.open("request");

  std::string type = "invalid";
  Reply reply;
  harness::JsonParse parse;
  {
    const RequestTrace::Scope parse_scope(ctx.trace, "parse");
    parse = harness::parse_json(line);
  }
  std::string envelope_error;
  if (!parse.ok()) {
    reply = error_reply(ctx, "malformed request: " + parse.error);
  } else if (parse.value.kind() != JsonValue::Kind::kObject) {
    reply = error_reply(ctx, "request must be a JSON object");
  } else if (envelope_error = read_trace_envelope(parse.value, ctx);
             !envelope_error.empty()) {
    reply = error_reply(ctx, envelope_error);
  } else {
    const JsonValue* request_field = parse.value.find("request");
    if (request_field == nullptr || request_field->kind() != JsonValue::Kind::kString) {
      reply = error_reply(ctx, "missing string field 'request'");
    } else {
      // The dispatch table: one row per request type.  request_names() and
      // DESIGN.md's protocol reference must list exactly these names — the
      // protocol-doc test diffs all three.
      struct Row {
        const char* name;
        Reply (ExperimentService::*handler)(const JsonValue&, RequestContext&);
      };
      static constexpr Row kDispatch[] = {
          {"run", &ExperimentService::handle_run},
          {"run-batch", &ExperimentService::handle_run_batch},
          {"list", &ExperimentService::handle_list},
          {"describe", &ExperimentService::handle_describe},
          {"cache-stats", &ExperimentService::handle_cache_stats},
          {"metrics", &ExperimentService::handle_metrics},
          {"metrics-prom", &ExperimentService::handle_metrics_prom},
          {"drain", &ExperimentService::handle_drain},
          {"shutdown", &ExperimentService::handle_shutdown},
      };
      const std::string& request = request_field->as_string();
      const Row* row = nullptr;
      for (const Row& candidate : kDispatch) {
        if (request == candidate.name) {
          row = &candidate;
          break;
        }
      }
      if (row == nullptr) {
        reply = error_reply(ctx,
                            "unknown request '" + request +
                                "' (expected run, run-batch, list, describe, cache-stats, "
                                "metrics, metrics-prom, drain or shutdown)",
                            kCodeUnknownRequest);
      } else {
        type = row->name;
        // A daemon must outlive any single request: anything a handler
        // throws (engine failures, rethrown leader exceptions from the
        // single-flight latch) becomes an error reply, never a dead server.
        try {
          reply = (this->*row->handler)(parse.value, ctx);
        } catch (const std::exception& error) {
          reply =
              error_reply(ctx, std::string("internal error: ") + error.what(), kCodeInternal);
        }
      }
    }
  }

  ctx.trace.close(root);
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  finalize_request(ctx, type, reply, wall);
  metrics_.record_request(type, reply.ok, wall);
  return reply;
}

void ExperimentService::finalize_request(RequestContext& ctx, const std::string& type,
                                         Reply& reply, double wall_seconds) {
  if (!ctx.trace.enabled() && !access_log_.enabled()) return;

  // Span durations feed the per-stage latency histograms ("metrics-prom");
  // the depth-0 root is the request latency histogram itself and is skipped.
  for (const TraceSpan& span : ctx.trace.spans()) {
    if (span.depth == 0) continue;
    metrics_.record_stage(span.name, static_cast<double>(span.dur_us) * 1e-6);
  }

  if (ctx.trace_id.empty()) ctx.trace_id = trace_ids_.next();
  const bool slow =
      config_.slow_ms > 0 && wall_seconds * 1e3 >= static_cast<double>(config_.slow_ms);

  // The echo goes into the already-rendered reply envelope, in front of its
  // closing brace — the embedded record bytes stay untouched, keeping the
  // determinism contract (cached records never carry wall time or spans).
  // A traced engine run's profile rides along, so a sweep or client can
  // attribute a computed run without tailing the daemon's trace log.
  if (ctx.echo && !reply.line.empty() && reply.line.back() == '}') {
    std::string echo = ", \"trace_id\": \"" + harness::json_escape(ctx.trace_id) +
                       "\", \"spans\": " + ctx.trace.render_spans();
    if (!ctx.profile_json.empty()) echo += ", \"profile\": " + ctx.profile_json;
    reply.line.insert(reply.line.size() - 1, echo);
  }

  if (!trace_log_.enabled() && !access_log_.enabled()) return;
  const double timestamp =
      std::chrono::duration<double>(std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonObject entry;
  entry.add("ts", timestamp);
  entry.add("trace_id", ctx.trace_id);
  entry.add("type", type);
  if (!ctx.origin.empty()) entry.add("origin", ctx.origin);
  if (!ctx.experiment.empty()) entry.add("experiment", ctx.experiment);
  if (!ctx.cache.empty()) entry.add("cache", ctx.cache);
  entry.add("status", reply.ok ? "ok" : "error");
  if (ctx.code != nullptr) entry.add("code", ctx.code);
  entry.add("wall_ms", wall_seconds * 1e3);
  if (slow) entry.add("slow", true);
  if (access_log_.enabled()) access_log_.write(entry.render_line());
  if (trace_log_.enabled()) {
    // The trace line is the access line plus the span tree and, for traced
    // engine runs, the per-shard profile — one self-contained JSONL record
    // per request, which is what lets a slow request be attributed to a
    // stage from the log alone.
    entry.add_json("spans", ctx.trace.render_spans());
    if (!ctx.profile_json.empty()) entry.add_json("profile", ctx.profile_json);
    trace_log_.write(entry.render_line());
  }
}

int ExperimentService::effective_timeout_ms(const RunSpec& spec) const {
  if (spec.timeout_given) return static_cast<int>(spec.timeout_ms);
  return config_.timeout_ms;
}

ExperimentService::RunOutcome ExperimentService::run_one(const RunSpec& run,
                                                         const std::atomic<bool>* cancel,
                                                         RequestContext& ctx) {
  RunOutcome out;
  const auto* error_rate = harness::find_error_rate_experiment(run.experiment);
  const auto* chain_profile =
      error_rate == nullptr ? harness::find_chain_profile_experiment(run.experiment) : nullptr;
  if (error_rate == nullptr && chain_profile == nullptr) {
    out.error = "unknown experiment '" + run.experiment + "' (try \"list\")";
    out.code = kCodeUnknownExperiment;
    return out;
  }
  if (chain_profile != nullptr && run.path_given) {
    out.error = "field 'eval_path' only applies to error-rate experiments; '" + run.experiment +
                "' is a chain-profile experiment";
    return out;
  }

  CacheKey key;
  key.experiment = run.experiment;
  key.samples = run.samples_given
                    ? run.samples
                    : (error_rate != nullptr ? error_rate->default_samples
                                             : chain_profile->default_samples);
  key.seed = run.seed;
  key.eval_path = to_string(error_rate != nullptr ? run.path : harness::EvalPath::kScalar);
  if (chain_profile != nullptr &&
      chain_profile->workload == harness::ChainProfileExperiment::Workload::kCrypto) {
    key.stream_version = kCryptoStreamVersion;
  } else if (chain_profile != nullptr && gaussian_dist(chain_profile->dist)) {
    key.stream_version = kGaussStreamVersion;
  } else if (error_rate != nullptr && gaussian_dist(error_rate->dist)) {
    key.stream_version = kGaussStreamVersion;
  }

  // Cancellation wears two hats: a fired per-request deadline (timeout) or
  // a server drain cancelling in-flight runs at its deadline (draining —
  // clients should retry another replica, and it is not a timeout metric).
  const auto cancelled = [this, &out](const std::string& what) {
    if (drain_.draining()) {
      out.error = "draining: " + what + " (server is draining, retry another replica)";
      out.code = kCodeDraining;
    } else {
      metrics_.record_timeout();
      out.error = "timeout: " + what;
      out.code = kCodeTimeout;
    }
  };

  // A deadline that already fired answers without touching the cache, so a
  // timed-out batch drains its remaining elements in microseconds.
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    cancelled("deadline expired before the run started");
    return out;
  }

  // Single-flight: one leader per key does the cache lookup and (on a miss)
  // the one computation; requests arriving while that is in flight wait on
  // the leader's future instead of re-sampling the same experiment in
  // parallel.  The latch is taken before the lookup so the cache counters
  // see exactly one event per non-coalesced request.
  const std::string map_key = cache_map_key(key);
  std::promise<std::string> promise;
  std::shared_future<std::string> future;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(map_key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_.emplace(map_key, future);
      leader = true;
    }
  }

  ResultCache::Lookup lookup;
  try {
    if (leader) {
      try {
        bool lease_waited = false;
        while (true) {
          {
            const RequestTrace::Scope lookup_scope(ctx.trace, "cache-lookup");
            lookup = cache_.get(key);
          }
          if (lookup.tier != ResultCache::Tier::kMiss) break;
          // Cross-process single-flight (fleet.hpp): replicas sharing one
          // cache dir elect a computer per cold key via a lease file.  kBusy
          // means another replica is already sampling this key — wait for
          // its record (or its crash) instead of duplicating the compute.
          const fleet::ComputeLease lease = cache_.try_acquire_lease(key);
          if (lease.state() == fleet::ComputeLease::State::kBusy) {
            if (!lease_waited) {
              lease_waited = true;  // count once per request, not per poll round
              cache_.record_lease_wait();
            }
            const RequestTrace::Scope wait_scope(ctx.trace, "lease-wait");
            const fleet::LeaseWaitResult wait = fleet::wait_for_lease_release(
                cache_.lease_path(key), cache_.lease_stale_ms(), cancel);
            if (wait == fleet::LeaseWaitResult::kCancelled) throw harness::RunCancelled{};
            // kReleased: the holder stored (next lookup hits disk) or failed
            // (next round takes the lease).  kStale: the holder crashed; the
            // next try_acquire_lease reaps it and takes over.  Either way a
            // false takeover is harmless — a concurrent survivor would only
            // rename byte-identical content over byte-identical content.
            continue;
          }
          harness::RunOptions options;
          options.samples = key.samples;
          options.seed = key.seed;
          options.threads = config_.threads;
          options.cancel = cancel;
          // Profiling rides the tracing switch: collection is on only when a
          // trace wants it, so an untraced run pays one null check per shard
          // and block — and the profile never touches the record either way.
          harness::RunProfileCollector collector;
          if (ctx.trace.enabled()) options.profile = &collector;
          {
            const RequestTrace::Scope run_scope(ctx.trace, "engine-run");
            if (error_rate != nullptr) {
              const auto result = harness::run_experiment(*error_rate, options, run.path);
              lookup.record = error_rate_record(*error_rate, key.seed, run.path, result);
            } else {
              const auto profiler = harness::run_experiment(*chain_profile, options);
              lookup.record =
                  chain_profile_record(*chain_profile, key.samples, key.seed, profiler);
            }
          }
          if (options.profile != nullptr) {
            ctx.profile_json = harness::render_run_profile(collector.snapshot());
          }
          {
            // Only a completed run reaches put(): RunCancelled throws past
            // it, so a timed-out run never writes a partial cache record.
            const RequestTrace::Scope put_scope(ctx.trace, "record-write");
            cache_.put(key, lookup.record);
          }
          // The lease releases here (RAII) — after the record is on disk,
          // so a waiter that sees the release always finds the record.
          break;
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(inflight_mutex_);
          inflight_.erase(map_key);
        }
        promise.set_exception(std::current_exception());
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(map_key);
      }
      promise.set_value(lookup.record);
    } else {
      out.coalesced = true;
      const RequestTrace::Scope wait_scope(ctx.trace, "coalesced-wait");
      // A follower enforces its *own* deadline: the leader may have a longer
      // deadline (or none), so the wait is bounded by this request's token.
      // The leader keeps computing — only this reply times out.
      if (cancel != nullptr) {
        while (future.wait_for(std::chrono::milliseconds(5)) != std::future_status::ready) {
          if (cancel->load(std::memory_order_relaxed)) {
            cancelled("deadline expired while waiting for a coalesced run");
            return out;
          }
        }
      }
      lookup.record = future.get();  // rethrows if the leader failed
      cache_.record_coalesced_hit();
    }
  } catch (const harness::RunCancelled&) {
    // Either our own deadline fired, or we coalesced onto a leader whose
    // deadline fired — the computation is gone either way.
    cancelled("run cancelled before completion");
    return out;
  }

  out.tier = lookup.tier;
  out.record = std::move(lookup.record);
  return out;
}

ExperimentService::Reply ExperimentService::handle_run(const JsonValue& request,
                                                       RequestContext& ctx) {
  // New work is refused during a drain; observational requests keep working
  // (rotation scripts poll metrics/cache-stats while the drain converges).
  if (drain_.draining()) {
    return error_reply(ctx, "server draining: not accepting new runs, retry another replica",
                       kCodeDraining);
  }
  RunSpec run;
  if (std::string error =
          read_run_spec(request,
                        {"request", "experiment", "samples", "seed", "eval_path",
                         "timeout_ms", "trace", "trace_id", "origin"},
                        run);
      !error.empty()) {
    return error_reply(ctx, error);
  }
  ctx.experiment = run.experiment;
  if (ctx.origin == "sweep") metrics_.record_sweep_request(1);

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  std::atomic<bool> cancel{false};
  // Registered for the drain deadline's cancel sweep (declaration order
  // matters: the scope unregisters before the token it points at dies).
  const fleet::DrainState::RunScope drain_scope(drain_, &cancel);
  const ArmedDeadline deadline(watchdog_, start, effective_timeout_ms(run), &cancel);
  // The token goes to the engine whether or not a deadline is armed: the
  // drain sweep (cancel_active_runs) flips it too, and an untimed run must
  // still die at the drain deadline.
  const RunOutcome outcome = run_one(run, &cancel, ctx);
  if (!outcome.error.empty()) return error_reply(ctx, outcome.error, outcome.code);
  ctx.cache = outcome.coalesced ? "coalesced" : tier_name(outcome.tier);

  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  const RequestTrace::Scope render_scope(ctx.trace, "render");
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "run");
  response.add("experiment", run.experiment);
  response.add("cache", ctx.cache);
  response.add("wall_seconds", wall);
  response.add_json("record", outcome.record);
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_run_batch(const JsonValue& request,
                                                             RequestContext& ctx) {
  if (drain_.draining()) {
    return error_reply(ctx, "server draining: not accepting new runs, retry another replica",
                       kCodeDraining);
  }
  if (std::string error =
          check_fields(request, {"request", "runs", "timeout_ms", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  const JsonValue* runs = request.find("runs");
  if (runs == nullptr || runs->kind() != JsonValue::Kind::kArray) {
    return error_reply(ctx, "run-batch requires array field 'runs'");
  }
  std::uint64_t timeout_ms = 0;
  bool timeout_given = false;
  if (std::string error = read_u64_field(request, "timeout_ms", timeout_ms, timeout_given);
      !error.empty()) {
    return error_reply(ctx, error);
  }
  if (timeout_given && timeout_ms == 0) {
    return error_reply(ctx,
                       "field 'timeout_ms' must be positive (omit it for the server default)");
  }
  if (timeout_given && timeout_ms > kMaxTimeoutMs) {
    return error_reply(ctx, "field 'timeout_ms' must be at most 86400000 (24 hours)");
  }
  if (ctx.origin == "sweep") {
    metrics_.record_sweep_request(static_cast<std::uint64_t>(runs->items().size()));
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  // One deadline for the whole batch: the request either finishes inside it
  // or drains its remaining elements as per-element timeout errors.
  const int effective_ms =
      timeout_given ? static_cast<int>(timeout_ms) : config_.timeout_ms;
  std::atomic<bool> cancel{false};
  const fleet::DrainState::RunScope drain_scope(drain_, &cancel);
  const ArmedDeadline deadline(watchdog_, start, effective_ms, &cancel);

  std::vector<std::string> results;
  results.reserve(runs->items().size());
  std::uint64_t ok_count = 0;
  std::uint64_t error_count = 0;
  for (const JsonValue& element : runs->items()) {
    // One "element" span per batch element (all depth 1, sequential): the
    // trace shows where a slow batch spent its deadline element by element.
    const RequestTrace::Scope element_scope(ctx.trace, "element");
    metrics_.record_batch_element();
    // Per-element profile attribution: run_one fills ctx.profile_json for a
    // traced computed run; clearing it per element keeps each profile with
    // its own element instead of the last miss shadowing the batch.
    ctx.profile_json.clear();
    JsonObject rendered;
    RunSpec spec;
    std::string error;
    if (element.kind() != JsonValue::Kind::kObject) {
      error = "batch element must be a JSON object (a run spec)";
    } else {
      error = read_run_spec(element, {"experiment", "samples", "seed", "eval_path"}, spec);
    }
    if (!error.empty()) {
      rendered.add("status", "error");
      rendered.add("code", kCodeBadRequest);
      rendered.add("error", error);
      ++error_count;
      results.push_back(rendered.render_line());
      continue;
    }
    RunOutcome outcome;
    try {
      // &cancel, not deadline.token(): the drain sweep must reach untimed
      // batches too (see handle_run).
      outcome = run_one(spec, &cancel, ctx);
    } catch (const std::exception& failure) {
      outcome.error = std::string("internal error: ") + failure.what();
      outcome.code = kCodeInternal;
    }
    if (!outcome.error.empty()) {
      rendered.add("status", "error");
      rendered.add("code", outcome.code);
      rendered.add("error", outcome.error);
      rendered.add("experiment", spec.experiment);
      ++error_count;
    } else {
      rendered.add("status", "ok");
      rendered.add("experiment", spec.experiment);
      rendered.add("cache", outcome.coalesced ? "coalesced" : tier_name(outcome.tier));
      rendered.add_json("record", outcome.record);
      // A traced computed element carries its own RunProfile (cache hits
      // never ran the engine and have none) — the per-cell attribution
      // sweeps aggregate into their profile rollups.
      if (!ctx.profile_json.empty()) rendered.add_json("profile", ctx.profile_json);
      ++ok_count;
    }
    results.push_back(rendered.render_line());
  }

  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  const RequestTrace::Scope render_scope(ctx.trace, "render");
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "run-batch");
  response.add("count", static_cast<std::uint64_t>(results.size()));
  response.add("ok", ok_count);
  response.add("errors", error_count);
  response.add("wall_seconds", wall);
  response.add_json("results", render_object_array(results));
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_list(const JsonValue& request,
                                                        RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "prefix", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  std::string prefix;
  bool given = false;
  if (std::string error = read_string_field(request, "prefix", prefix, given);
      !error.empty()) {
    return error_reply(ctx, error);
  }

  std::vector<std::string> error_rate;
  for (const auto* experiment : harness::error_rate_experiments_with_prefix(prefix)) {
    error_rate.push_back(experiment->name);
  }
  std::vector<std::string> chain_profile;
  for (const auto* experiment : harness::chain_profile_experiments_with_prefix(prefix)) {
    chain_profile.push_back(experiment->name);
  }

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "list");
  response.add_json("error_rate", render_string_array(error_rate));
  response.add_json("chain_profile", render_string_array(chain_profile));
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_describe(const JsonValue& request,
                                                            RequestContext& ctx) {
  if (std::string error =
          check_fields(request, {"request", "experiment", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  std::string name;
  bool given = false;
  if (std::string error = read_string_field(request, "experiment", name, given);
      !error.empty()) {
    return error_reply(ctx, error);
  }
  if (!given || name.empty()) return error_reply(ctx, "describe requires field 'experiment'");

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "describe");
  if (const auto* experiment = harness::find_error_rate_experiment(name)) {
    response.add("experiment", experiment->name);
    response.add("kind", "error-rate");
    response.add("model", to_string(experiment->model));
    response.add("width", experiment->width);
    response.add("window", experiment->window);
    response.add("distribution", arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  if (const auto* experiment = harness::find_chain_profile_experiment(name)) {
    const bool crypto =
        experiment->workload == harness::ChainProfileExperiment::Workload::kCrypto;
    response.add("experiment", experiment->name);
    response.add("kind", "chain-profile");
    response.add("width", experiment->width);
    response.add("workload", crypto ? "crypto" : "distribution");
    response.add("source", crypto ? std::string(to_string(experiment->crypto_kind))
                                  : arith::to_string(experiment->dist));
    response.add("default_samples", experiment->default_samples);
    response.add("description", experiment->description);
    return {response.render_line(), false};
  }
  return error_reply(ctx, "unknown experiment '" + name + "' (try \"list\")",
                     kCodeUnknownExperiment);
}

ExperimentService::Reply ExperimentService::handle_cache_stats(const JsonValue& request,
                                                               RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  const CacheStats stats = cache_.stats();
  // Per-tier ratios over all lookups that answered a run: memory, disk,
  // coalesced (single-flight followers), and leader misses.
  const std::uint64_t hits = stats.memory_hits + stats.disk_hits + stats.coalesced_hits;
  const std::uint64_t lookups = hits + stats.misses;
  const auto ratio = [lookups](std::uint64_t count) {
    return lookups == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(lookups);
  };
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "cache-stats");
  response.add("memory_hits", stats.memory_hits);
  response.add("disk_hits", stats.disk_hits);
  response.add("coalesced_hits", stats.coalesced_hits);
  response.add("misses", stats.misses);
  response.add("memory_hit_ratio", ratio(stats.memory_hits));
  response.add("disk_hit_ratio", ratio(stats.disk_hits));
  response.add("coalesced_hit_ratio", ratio(stats.coalesced_hits));
  response.add("hit_ratio", ratio(hits));
  response.add("stores", stats.stores);
  response.add("evictions", stats.evictions);
  response.add("disk_evictions", stats.disk_evictions);
  response.add("invalid_disk_records", stats.invalid_disk_records);
  response.add("lease_waits", stats.lease_waits);
  response.add("lease_takeovers", stats.lease_takeovers);
  response.add("memory_entries", stats.memory_entries);
  response.add("memory_capacity", static_cast<std::uint64_t>(cache_.memory_capacity()));
  response.add("disk_dir", cache_.disk_dir());
  response.add("disk_bytes", stats.disk_bytes);
  response.add("disk_max_bytes", cache_.max_disk_bytes());
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_metrics(const JsonValue& request,
                                                           RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  const MetricsSnapshot snapshot = metrics_.snapshot();
  const CacheStats cache_stats = cache_.stats();
  const std::uint64_t hits = cache_stats.memory_hits + cache_stats.disk_hits;
  const std::uint64_t lookups = hits + cache_stats.misses;

  JsonObject response;
  response.add("status", "ok");
  response.add("request", "metrics");
  // The snapshot taken before this request finished — "metrics" itself is
  // not yet in any counter (it records on return like every request).
  response.add("requests_total", snapshot.requests_total);
  response.add("ok_total", snapshot.ok_total);
  response.add("error_total", snapshot.error_total);
  response.add("timeouts", snapshot.timeouts);
  response.add("batch_elements", snapshot.batch_elements);
  response.add("sweep_requests", snapshot.sweep_requests);
  response.add("sweep_cells", snapshot.sweep_cells);
  response.add("rejected_connections", snapshot.rejected_connections);
  response.add("in_flight", snapshot.in_flight);
  response.add("draining", snapshot.draining != 0);
  response.add("uptime_seconds", snapshot.uptime_seconds);
  response.add("qps", snapshot.qps);
  response.add("qps_60s", snapshot.qps_60s);
  response.add("cache_hits", hits);
  response.add("cache_misses", cache_stats.misses);
  response.add("cache_hit_ratio",
               lookups == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(lookups));
  response.add("latency_p50_seconds", snapshot.latency_p50_seconds);
  response.add("latency_p95_seconds", snapshot.latency_p95_seconds);
  response.add("latency_p99_seconds", snapshot.latency_p99_seconds);
  response.add("latency_max_seconds", snapshot.latency_max_seconds);
  JsonObject by_type;
  for (const RequestTypeCount& entry : snapshot.by_type) {
    by_type.add(entry.name, entry.count);
  }
  response.add_json("requests_by_type", by_type.render_line());
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_metrics_prom(const JsonValue& request,
                                                                RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  // The exposition text rides the line-framed protocol as a JSON envelope:
  // "body" is the complete text-format payload (newlines escaped by the
  // renderer), "content_type" what an HTTP scraper would have been served.
  // vlcsa_client --request=metrics-prom unwraps and prints the body raw.
  const std::string body = render_prometheus_text(metrics_.snapshot(), cache_.stats());
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "metrics-prom");
  response.add("content_type", "text/plain; version=0.0.4");
  response.add("body", body);
  return {response.render_line(), false};
}

ExperimentService::Reply ExperimentService::handle_drain(const JsonValue& request,
                                                         RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  // Flip the service-level flag immediately (so even a stdio conversation
  // rejects later runs); the socket server sees Reply::drain and drives the
  // connection side — stop accepting, drain deadline, exit 0.
  begin_drain();
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "drain");
  response.add("draining", true);
  response.add("active_runs", static_cast<std::uint64_t>(drain_.active_runs()));
  Reply reply{response.render_line(), false};
  reply.drain = true;
  return reply;
}

ExperimentService::Reply ExperimentService::handle_shutdown(const JsonValue& request,
                                                            RequestContext& ctx) {
  if (std::string error = check_fields(request, {"request", "trace", "trace_id", "origin"});
      !error.empty()) {
    return error_reply(ctx, error);
  }
  JsonObject response;
  response.add("status", "ok");
  response.add("request", "shutdown");
  return {response.render_line(), true};
}

std::uint64_t serve_stdio(std::istream& in, std::ostream& out, ExperimentService& service) {
  std::uint64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // tolerate blank lines between requests
    const ExperimentService::Reply reply = service.handle_line(line);
    out << reply.line << '\n' << std::flush;
    ++handled;
    // A drain ends a stdio conversation the same way a shutdown does: the
    // one connection this transport has is done accepting work.
    if (reply.shutdown || reply.drain) break;
  }
  return handled;
}

}  // namespace vlcsa::service
