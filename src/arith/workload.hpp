#pragma once
// Instrumented cryptographic workload — the substitute for the proprietary
// benchmark traces of Cilardo [6] used in Fig 6.2.
//
// The paper uses [6]'s profile of carry-chain lengths inside RSA / ECC /
// Diffie-Hellman arithmetic only to motivate one observation: practical
// additions mix short chains with sign-extension chains that run to the MSB
// (because subtraction is implemented as two's-complement addition and
// operands are often small relative to the datapath).  We reproduce the
// mechanism rather than the trace: a real prime-field arithmetic layer
// (modular add/sub/double-and-add multiply/square-and-multiply modexp) over
// our own big integers, where every addition the datapath would perform is
// reported to an observer that feeds the carry-chain profiler.

#include <cstdint>
#include <functional>

#include "arith/apint.hpp"
#include "arith/carry_chain.hpp"

namespace vlcsa::arith {

/// Called with the exact operand pair of every n-bit addition performed.
using AddObserver = std::function<void(const ApInt& a, const ApInt& b)>;

/// Returns a built-in prime of roughly `bits` size (at its natural width):
/// 16 -> 65521, 32 -> 2^31-1, 64 -> 2^61-1, 128 -> 2^127-1, 256 -> 2^255-19.
[[nodiscard]] ApInt builtin_prime(int bits);

/// Prime-field arithmetic instrumented at the adder level.  Values are
/// canonical residues in [0, m).  Every addition — including the
/// two's-complement subtractions used for modular reduction, which generate
/// the long sign-extension carry chains of Fig 6.2 — is reported.
class ModField {
 public:
  ModField(ApInt modulus, AddObserver observer);

  [[nodiscard]] int width() const { return modulus_.width(); }
  [[nodiscard]] const ApInt& modulus() const { return modulus_; }

  /// Uniformly random canonical residue.
  [[nodiscard]] ApInt random_element(BlockRng& rng) const;

  [[nodiscard]] ApInt add(const ApInt& a, const ApInt& b);
  [[nodiscard]] ApInt sub(const ApInt& a, const ApInt& b);
  [[nodiscard]] ApInt dbl(const ApInt& a) { return add(a, a); }
  /// Double-and-add modular multiplication.
  [[nodiscard]] ApInt mul(const ApInt& a, const ApInt& b);
  /// Square-and-multiply modular exponentiation (exponent scanned MSB first).
  [[nodiscard]] ApInt pow(const ApInt& base, const ApInt& exponent);

  /// Number of datapath additions performed so far.
  [[nodiscard]] std::uint64_t additions() const { return additions_; }

 private:
  /// Performs (and reports) one datapath addition.
  [[nodiscard]] ApInt observed_add(const ApInt& a, const ApInt& b);
  /// Conditionally subtracts m from x in [0, 2m).
  [[nodiscard]] ApInt reduce_once(const ApInt& x);

  ApInt modulus_;
  ApInt neg_modulus_;  // two's complement of m: the subtract-side operand
  AddObserver observer_;
  std::uint64_t additions_ = 0;
};

/// Workload mix roughly mirroring [6]'s benchmark set.
enum class CryptoKind {
  kRsaLike,            // modexp with a 17-bit Fermat-style public exponent
  kDiffieHellmanLike,  // modexp with a full-width random secret exponent
  kEcFieldLike,        // point-addition-shaped field op sequences (mul/sub/add)
};

[[nodiscard]] const char* to_string(CryptoKind kind);

struct CryptoWorkloadConfig {
  /// Datapath (adder) width the workload executes on.  Real ALUs/datapaths
  /// are wider than the field residues they process; it is exactly this gap
  /// (small operands, two's-complement subtractions, sign-extended
  /// intermediates) that produces the long carry chains of Fig 6.2.
  int width = 64;
  /// Field size: builtin_prime(field_bits) is zero-extended onto the
  /// datapath.  0 picks the largest supported prime at most width/2.
  int field_bits = 0;
  CryptoKind kind = CryptoKind::kRsaLike;
  int operations = 4;       // number of top-level crypto operations
  int exponent_bits = 48;   // secret-exponent size for DH-like ops
  std::uint64_t seed = 1;
};

/// Runs the workload and feeds every performed addition into `profiler`.
/// Returns the number of additions recorded.
std::uint64_t run_crypto_workload(const CryptoWorkloadConfig& config,
                                  CarryChainProfiler& profiler);

}  // namespace vlcsa::arith
