#include "netlist/dot.hpp"

#include <gtest/gtest.h>

#include "speculative/scsa_netlist.hpp"

namespace vlcsa::netlist {
namespace {

TEST(Dot, EmitsValidStructure) {
  Netlist nl("half adder");
  const Signal a = nl.add_input("a");
  const Signal b = nl.add_input("b");
  nl.add_output("s", nl.xor_(a, b), "spec");
  nl.add_output("c", nl.and_(a, b), "detect");
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph \"half adder\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"xor2\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"and2\""), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);   // spec group color
  EXPECT_NE(dot.find("orange"), std::string::npos);      // detect group color
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.find("label=\"?\""), std::string::npos);  // inputs carry port names
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

TEST(Dot, MuxEdgesAreAnnotated) {
  Netlist nl;
  const Signal s = nl.add_input("s");
  const Signal d0 = nl.add_input("d0");
  const Signal d1 = nl.add_input("d1");
  nl.add_output("y", nl.mux(s, d0, d1));
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("label=\"sel\""), std::string::npos);
}

TEST(Dot, IndexedPortNamesStayInLabels) {
  // Bracketed names must never leak into DOT node identifiers.
  const auto nl = spec::build_scsa_netlist(spec::ScsaConfig{8, 4},
                                           spec::ScsaVariant::kScsa1);
  const std::string dot = to_dot(nl);
  for (std::size_t pos = dot.find("  o"); pos != std::string::npos;
       pos = dot.find("  o", pos + 1)) {
    const std::size_t bracket = dot.find('[', pos);
    const std::size_t space = dot.find(' ', pos + 2);
    ASSERT_LT(space, bracket);  // node id ends before any attribute bracket
  }
  EXPECT_NE(dot.find("label=\"sum[0]\""), std::string::npos);
}

}  // namespace
}  // namespace vlcsa::netlist
