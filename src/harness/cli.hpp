#pragma once
// Command-line parsing for the adder_explorer front end, extracted into the
// library so the parser is unit-testable.  Parsing is strict: unknown flags,
// missing "=value" parts, non-numeric or out-of-range numbers, and bad enum
// values are all hard errors with a message naming the offending argument —
// a typo'd flag must never be silently ignored (it would quietly change
// which experiment ran).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/montecarlo.hpp"

namespace vlcsa::harness {

/// One strict "--name=value" flag: `apply` validates and stores the value,
/// returning false to reject it.  This is the single flag-matching
/// implementation in the repo — the explorer parser, BenchArgs (report.hpp)
/// and the service binaries all build on it, so every front end reports
/// malformed input the same way.
struct ValueFlag {
  const char* name;
  std::function<bool(const std::string&)> apply;
};

/// Matches `arg` against "--name=value" / bare "--name".  Returns true when
/// `arg` addressed this flag (possibly setting `error`: bad value, or a bare
/// flag missing its "=value" part).
[[nodiscard]] bool match_value_flag(const std::string& arg, const std::string& name,
                                    const std::function<bool(const std::string&)>& apply,
                                    std::string& error);

/// Parses argv[1..] strictly against `flags`: every argument must address
/// exactly one flag (unknown arguments are errors), except arguments
/// starting with `tolerate_prefix` when non-empty (e.g. "--benchmark" so
/// google-benchmark flags don't kill table benches).  Returns "" on success,
/// else the error message naming the offending argument.
[[nodiscard]] std::string parse_value_flags(int argc, const char* const* argv,
                                            const std::vector<ValueFlag>& flags,
                                            std::string_view tolerate_prefix = {});

/// Everything the adder_explorer front end can be asked to do.
struct ExplorerOptions {
  // Mode flags (checked in this order by the front end).
  bool show_help = false;
  bool list_designs = false;
  bool list_experiments = false;

  // Netlist-building mode.
  std::string design = "kogge-stone";
  std::string verilog_path;  // --verilog=FILE
  int width = 64;
  int window = 0;  // 0 = sized for 0.01%
  int chain = 0;   // 0 = published VLSA chain length

  // Experiment mode.
  std::string experiment;  // --experiment=NAME
  std::string json_path;   // --json=FILE: machine-readable result record
  std::uint64_t samples = 0;  // 0 = the experiment's default
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = all hardware threads
  EvalPath path = EvalPath::kBatched;  // --batch=on|off
  bool path_explicit = false;  // --batch was given (vs defaulted) — lets the
                               // front end reject it where it cannot apply
  bool profile = false;  // --profile: print the engine RunProfile to stderr
};

/// Result of parsing an argv; `error` is empty on success.
struct ExplorerParse {
  ExplorerOptions options;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses adder_explorer arguments (argv[0] is skipped).  Never throws;
/// every malformed input is reported through `error`.
[[nodiscard]] ExplorerParse parse_explorer_args(int argc, const char* const* argv);

/// Strict full-string parses used by the CLI (exposed for testing): the
/// entire string must be a base-10 number in range, else false.
[[nodiscard]] bool parse_u64(const std::string& text, std::uint64_t& out);
[[nodiscard]] bool parse_nonnegative_int(const std::string& text, int& out);

}  // namespace vlcsa::harness
