#pragma once
// Fleet-mode primitives: what it takes to run several vlcsa_serve replicas
// against one cache directory and rotate them in and out under load.
//
// - DirLock: an advisory flock on a well-known file inside the cache dir,
//   serializing disk-tier renames and eviction walks across processes (the
//   in-process disk_mutex_ only covers one replica).
// - ComputeLease: cross-process single-flight.  A replica about to compute a
//   missing record takes `<record-path>.lease` with O_CREAT|O_EXCL; other
//   replicas seeing the lease wait for the record instead of re-sampling the
//   same experiment.  A lease whose mtime is older than the staleness bound
//   belonged to a crashed holder and is reaped (takeover) — and because
//   records are pure functions of their key, even a *false* takeover only
//   ever renames byte-identical content over byte-identical content.
// - DrainState: the graceful-drain flag plus a registry of in-flight run
//   cancellation tokens, so a drain deadline can cancel what's still running.
// - RetryPolicy/BackoffSchedule: bounded exponential backoff with jitter for
//   the client side (retry on overloaded/draining/connect-refused).
// - fault::*: the VLCSA_FAULT= test hook — compiled in, default off —
//   injecting crashes, slow writes and torn reads at named cache sites so
//   the fleet tests and CI can rehearse replica failure deterministically.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vlcsa::service::fleet {

/// RAII advisory lock (flock LOCK_EX) on a lock file, created on demand.
/// Advisory means every writer must take it — the cache's disk tier does —
/// while plain readers stay lock-free (rename keeps records atomic for them).
class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { release(); }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Blocks until the lock is held.  Returns false when the lock file cannot
  /// be created/locked (unwritable dir) — callers proceed unlocked then, the
  /// same degradation as an unwritable disk tier.
  [[nodiscard]] bool acquire(const std::string& lock_path);
  void release();
  [[nodiscard]] bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// One key's compute lease (see the file header).  Move-only RAII: releasing
/// (or destruction) unlinks the lease file.
class ComputeLease {
 public:
  enum class State {
    kDisabled,  // no disk tier / lease machinery unavailable: just compute
    kAcquired,  // we hold the lease; compute, store, release
    kBusy,      // another live process holds it; wait for its record
  };

  ComputeLease() = default;
  ~ComputeLease() { release(); }
  ComputeLease(ComputeLease&& other) noexcept;
  ComputeLease& operator=(ComputeLease&& other) noexcept;
  ComputeLease(const ComputeLease&) = delete;
  ComputeLease& operator=(const ComputeLease&) = delete;

  /// Attempts O_CREAT|O_EXCL on `lease_path` (content: holder pid).  On
  /// EEXIST, a lease older than `stale_ms` is unlinked (crashed holder) and
  /// the create retried once; a second EEXIST means somebody else won the
  /// takeover race and the result is kBusy.  `stale_ms <= 0` disables
  /// takeover (an existing lease is always kBusy).
  State try_acquire(const std::string& lease_path, int stale_ms);

  void release();
  [[nodiscard]] State state() const { return state_; }
  /// True when this acquisition reaped a stale predecessor.
  [[nodiscard]] bool took_over() const { return took_over_; }

 private:
  std::string path_;
  State state_ = State::kDisabled;
  bool took_over_ = false;
};

/// Age of the lease file at `lease_path` in milliseconds, or -1 when it does
/// not exist (released).  Clock skew between replicas sharing a filesystem
/// is the operator's problem (OPERATIONS.md, lease-staleness tuning).
[[nodiscard]] long long lease_age_ms(const std::string& lease_path);

enum class LeaseWaitResult {
  kReleased,   // the lease file disappeared — the holder stored (or failed)
  kStale,      // the lease outlived stale_ms — holder presumed crashed
  kCancelled,  // our own cancel token flipped while waiting
};

/// Polls `lease_path` every few milliseconds until it is released, stale, or
/// `cancel` (may be null) flips.
[[nodiscard]] LeaseWaitResult wait_for_lease_release(const std::string& lease_path,
                                                     int stale_ms,
                                                     const std::atomic<bool>* cancel,
                                                     int poll_ms = 5);

/// Graceful-drain state shared between the request router and the socket
/// server: once begun (idempotent), new run/run-batch work answers a
/// "draining"-coded error while observational requests keep working, and the
/// registered in-flight run tokens can all be cancelled at the drain
/// deadline.  Thread-safe.
class DrainState {
 public:
  void begin();
  [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_relaxed); }

  [[nodiscard]] std::size_t active_runs() const;
  /// Flips every registered cancel token (the drain deadline fired).
  void cancel_active_runs();

  /// Registers one run's cancel token for the lifetime of the scope.  The
  /// token must outlive the scope (both are stack-locals in the handlers,
  /// declared token-first).
  class RunScope {
   public:
    RunScope(DrainState& drain, std::atomic<bool>* token);
    ~RunScope();
    RunScope(const RunScope&) = delete;
    RunScope& operator=(const RunScope&) = delete;

   private:
    DrainState& drain_;
    std::atomic<bool>* token_;
  };

 private:
  std::atomic<bool> draining_{false};
  mutable std::mutex mutex_;
  std::vector<std::atomic<bool>*> active_;
};

/// Client retry configuration: `attempts` retries *after* the first try
/// (0 disables), exponential delay base_ms * 2^(retry-1) capped at max_ms,
/// scaled by uniform jitter in [0.5, 1.0] so a fleet of clients bounced off
/// one draining replica doesn't re-arrive in lockstep.
struct RetryPolicy {
  int attempts = 0;
  int base_ms = 100;
  int max_ms = 5000;
  /// Jitter stream seed; 0 derives one from pid + clock (fine for clients),
  /// nonzero makes the schedule deterministic (tests).
  std::uint64_t jitter_seed = 0;
};

/// The delay sequence a RetryPolicy induces.  One instance per logical
/// request (retry counter starts at 1).
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy);

  /// Delay in ms before the next retry; advances the retry counter.
  [[nodiscard]] int next_delay_ms();

 private:
  RetryPolicy policy_;
  int retry_ = 0;
  std::uint64_t jitter_state_;  // splitmix-style stream over the seed
};

namespace fault {

/// Exit code used by the crash-* faults (_exit, no unwinding — that is the
/// point: simulate a kill -9 / power loss mid-operation).
constexpr int kExitCode = 42;

/// True when `site` appears in the active fault spec.  The spec is read from
/// the VLCSA_FAULT environment variable on first query ("site[=ms][,...]");
/// unset/empty means every site is off and each query is one atomic load.
[[nodiscard]] bool enabled(const char* site);

/// The `=ms` parameter of `site`, or `default_ms` when absent/unparsable.
[[nodiscard]] int param_ms(const char* site, int default_ms);

/// _exit(kExitCode) when `site` is armed; no-op otherwise.
void maybe_crash(const char* site);

/// Sleeps param_ms(site, default_ms) when `site` is armed; no-op otherwise.
void maybe_sleep(const char* site, int default_ms);

/// Truncates `record` to half its size when `site` is armed — the torn-read
/// injection the disk tier's validation must catch.
void maybe_tear(const char* site, std::string& record);

/// Test hook: replaces the active spec ("" = all off) without touching the
/// environment.  Not thread-safe against concurrent queries — call it from
/// test setup only.
void configure_for_test(const std::string& spec);

}  // namespace fault

}  // namespace vlcsa::service::fleet
