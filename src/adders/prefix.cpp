#include "adders/prefix.hpp"

#include <array>
#include <stdexcept>

namespace vlcsa::adders {

GP combine(Netlist& nl, const GP& hi, const GP& lo) {
  const Signal g = nl.or_(hi.g, nl.and_(hi.p, lo.g));
  const Signal p = nl.and_(hi.p, lo.p);
  return GP{g, p};
}

const char* to_string(PrefixTopology topology) {
  switch (topology) {
    case PrefixTopology::kKoggeStone: return "kogge-stone";
    case PrefixTopology::kBrentKung: return "brent-kung";
    case PrefixTopology::kSklansky: return "sklansky";
    case PrefixTopology::kHanCarlson: return "han-carlson";
  }
  return "?";
}

std::span<const PrefixTopology> all_prefix_topologies() {
  static constexpr std::array<PrefixTopology, 4> kAll = {
      PrefixTopology::kKoggeStone,
      PrefixTopology::kBrentKung,
      PrefixTopology::kSklansky,
      PrefixTopology::kHanCarlson,
  };
  return kAll;
}

namespace {

std::vector<GP> kogge_stone(Netlist& nl, std::vector<GP> cur) {
  const int n = static_cast<int>(cur.size());
  for (int d = 1; d < n; d <<= 1) {
    const std::vector<GP> prev = cur;
    for (int i = n - 1; i >= d; --i) {
      cur[static_cast<std::size_t>(i)] =
          combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(i - d)]);
    }
  }
  return cur;
}

std::vector<GP> sklansky(Netlist& nl, std::vector<GP> cur) {
  const int n = static_cast<int>(cur.size());
  for (int t = 0; (1 << t) < n; ++t) {
    const std::vector<GP> prev = cur;
    for (int i = 0; i < n; ++i) {
      if ((i >> t) & 1) {
        const int j = ((i >> t) << t) - 1;  // top of the completed lower block
        cur[static_cast<std::size_t>(i)] =
            combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(j)]);
      }
    }
  }
  return cur;
}

std::vector<GP> brent_kung(Netlist& nl, std::vector<GP> cur) {
  const int n = static_cast<int>(cur.size());
  // Up-sweep: binary reduction tree.
  for (int d = 1; d < n; d <<= 1) {
    for (int i = 2 * d - 1; i < n; i += 2 * d) {
      cur[static_cast<std::size_t>(i)] =
          combine(nl, cur[static_cast<std::size_t>(i)], cur[static_cast<std::size_t>(i - d)]);
    }
  }
  // Down-sweep: fill in the remaining prefixes.
  int top = 1;
  while (top * 2 < n) top *= 2;
  for (int d = top / 2; d >= 1; d /= 2) {
    for (int i = 3 * d - 1; i < n; i += 2 * d) {
      cur[static_cast<std::size_t>(i)] =
          combine(nl, cur[static_cast<std::size_t>(i)], cur[static_cast<std::size_t>(i - d)]);
    }
  }
  return cur;
}

std::vector<GP> han_carlson(Netlist& nl, std::vector<GP> cur) {
  const int n = static_cast<int>(cur.size());
  // Level 0: odd positions absorb their even neighbour.
  {
    const std::vector<GP> prev = cur;
    for (int i = 1; i < n; i += 2) {
      cur[static_cast<std::size_t>(i)] =
          combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(i - 1)]);
    }
  }
  // Kogge-Stone among the odd positions.
  for (int d = 2; d < n; d <<= 1) {
    const std::vector<GP> prev = cur;
    for (int i = n - 1; i >= d + 1; --i) {
      if (i % 2 == 1) {
        cur[static_cast<std::size_t>(i)] = combine(nl, prev[static_cast<std::size_t>(i)],
                                                   prev[static_cast<std::size_t>(i - d)]);
      }
    }
  }
  // Final level: even positions absorb the completed odd prefix below.
  {
    const std::vector<GP> prev = cur;
    for (int i = 2; i < n; i += 2) {
      cur[static_cast<std::size_t>(i)] =
          combine(nl, prev[static_cast<std::size_t>(i)], prev[static_cast<std::size_t>(i - 1)]);
    }
  }
  return cur;
}

}  // namespace

std::vector<GP> build_prefix_network(Netlist& nl, std::vector<GP> leaves,
                                     PrefixTopology topology) {
  if (leaves.empty()) throw std::invalid_argument("prefix network needs >= 1 leaf");
  switch (topology) {
    case PrefixTopology::kKoggeStone: return kogge_stone(nl, std::move(leaves));
    case PrefixTopology::kBrentKung: return brent_kung(nl, std::move(leaves));
    case PrefixTopology::kSklansky: return sklansky(nl, std::move(leaves));
    case PrefixTopology::kHanCarlson: return han_carlson(nl, std::move(leaves));
  }
  throw std::logic_error("unknown prefix topology");
}

std::vector<GP> make_pg_leaves(Netlist& nl, std::span<const Signal> a,
                               std::span<const Signal> b) {
  if (a.size() != b.size()) throw std::invalid_argument("operand width mismatch");
  std::vector<GP> leaves;
  leaves.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    leaves.push_back(GP{nl.and_(a[i], b[i]), nl.xor_(a[i], b[i])});
  }
  return leaves;
}

PrefixSums prefix_sum(Netlist& nl, std::span<const Signal> a, std::span<const Signal> b,
                      Signal cin, PrefixTopology topology) {
  std::vector<GP> leaves = make_pg_leaves(nl, a, b);
  PrefixSums out;
  out.p_bit.reserve(leaves.size());
  for (const auto& leaf : leaves) out.p_bit.push_back(leaf.p);

  // Fold the external carry into the bit-0 leaf: g0' = g0 | (p0 & cin).
  if (cin.valid()) {
    leaves[0].g = nl.or_(leaves[0].g, nl.and_(leaves[0].p, cin));
  }

  out.prefix = build_prefix_network(nl, std::move(leaves), topology);

  const std::size_t n = a.size();
  out.sum.resize(n);
  out.sum[0] = cin.valid() ? nl.xor_(out.p_bit[0], cin) : nl.buf(out.p_bit[0]);
  for (std::size_t i = 1; i < n; ++i) {
    out.sum[i] = nl.xor_(out.p_bit[i], out.prefix[i - 1].g);
  }
  out.cout = out.prefix[n - 1].g;
  return out;
}

ConditionalSums conditional_window_sums(Netlist& nl, std::span<const Signal> a,
                                        std::span<const Signal> b, PrefixTopology topology) {
  std::vector<GP> leaves = make_pg_leaves(nl, a, b);
  std::vector<Signal> p_bit, g_bit;
  p_bit.reserve(leaves.size());
  g_bit.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    p_bit.push_back(leaf.p);
    g_bit.push_back(leaf.g);
  }

  const std::vector<GP> prefix = build_prefix_network(nl, std::move(leaves), topology);

  const std::size_t k = a.size();
  ConditionalSums out;
  out.sum0.resize(k);
  out.sum1.resize(k);
  // Bit 0: carry-in is the window carry itself.
  out.sum0[0] = nl.buf(p_bit[0]);
  out.sum1[0] = nl.not_(p_bit[0]);
  for (std::size_t j = 1; j < k; ++j) {
    const GP& below = prefix[j - 1];  // (G,P) over [0 .. j-1] within the window
    out.sum0[j] = nl.xor_(p_bit[j], below.g);
    out.sum1[j] = nl.xor_(p_bit[j], nl.or_(below.g, below.p));
  }
  out.group_g = prefix[k - 1].g;
  out.group_p = prefix[k - 1].p;
  out.cout0 = out.group_g;
  out.cout1 = nl.or_(out.group_g, out.group_p);
  out.group_g_light =
      k == 1 ? out.group_g
             : nl.or_(g_bit[k - 1], nl.and_(p_bit[k - 1], prefix[k - 2].g));
  return out;
}

}  // namespace vlcsa::adders
