#include "arith/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vlcsa::arith {
namespace {

TEST(Distributions, FactoryProducesAllKinds) {
  for (const auto dist :
       {InputDistribution::kUniformUnsigned, InputDistribution::kUniformTwos,
        InputDistribution::kGaussianUnsigned, InputDistribution::kGaussianTwos}) {
    const auto source = make_source(dist, 64);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->width(), 64);
    EXPECT_EQ(source->name(), to_string(dist));
  }
}

TEST(Distributions, SameSeedSameStream) {
  for (const auto dist :
       {InputDistribution::kUniformUnsigned, InputDistribution::kUniformTwos,
        InputDistribution::kGaussianUnsigned, InputDistribution::kGaussianTwos}) {
    const auto s1 = make_source(dist, 64);
    const auto s2 = make_source(dist, 64);
    vlcsa::arith::BlockRng r1(99), r2(99);
    for (int i = 0; i < 20; ++i) {
      const auto [a1, b1] = s1->next(r1);
      const auto [a2, b2] = s2->next(r2);
      EXPECT_EQ(a1, a2);
      EXPECT_EQ(b1, b2);
    }
  }
}

TEST(Distributions, OperandsHaveRequestedWidth) {
  const auto source = make_source(InputDistribution::kGaussianTwos, 512);
  vlcsa::arith::BlockRng rng(3);
  const auto [a, b] = source->next(rng);
  EXPECT_EQ(a.width(), 512);
  EXPECT_EQ(b.width(), 512);
}

TEST(Distributions, UniformTwosCoversBothSigns) {
  UniformTwosSource source(64);
  vlcsa::arith::BlockRng rng(5);
  int negatives = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = source.next(rng);
    if (a.sign_bit()) ++negatives;
    if (b.sign_bit()) ++negatives;
  }
  // Roughly half of 2n operands should be negative.
  EXPECT_GT(negatives, n * 2 * 2 / 10);
  EXPECT_LT(negatives, n * 2 * 8 / 10);
}

TEST(Distributions, GaussianTwosIsSignExtendedSmallMagnitude) {
  // sigma = 2^32 on a 512-bit datapath: operands must be sign extensions of
  // ~33-bit values, i.e. bits far above 48 all equal the sign bit.
  GaussianTwosSource source(512, GaussianParams{0.0, std::ldexp(1.0, 32)});
  vlcsa::arith::BlockRng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = source.next(rng);
    for (const auto& v : {a, b}) {
      const bool sign = v.sign_bit();
      for (int bit = 64; bit < 512; bit += 37) {
        EXPECT_EQ(v.bit(bit), sign);
      }
    }
  }
}

TEST(Distributions, GaussianUnsignedNeverSetsFarHighBits) {
  GaussianUnsignedSource source(512, GaussianParams{0.0, std::ldexp(1.0, 32)});
  vlcsa::arith::BlockRng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = source.next(rng);
    EXPECT_LT(a.highest_set_bit(), 48);
    EXPECT_LT(b.highest_set_bit(), 48);
  }
}

TEST(Distributions, EncodeSignedSampleClampsSmallWidths) {
  EXPECT_EQ(encode_signed_sample(8, 1000.0).to_i64(), 127);
  EXPECT_EQ(encode_signed_sample(8, -1000.0).to_i64(), -128);
  EXPECT_EQ(encode_signed_sample(8, 3.4).to_i64(), 3);
  EXPECT_EQ(encode_signed_sample(8, -2.6).to_i64(), -3);
}

TEST(Distributions, EncodeUnsignedSampleTakesMagnitude) {
  EXPECT_EQ(encode_unsigned_sample(8, -5.0).to_u64(), 5u);
  EXPECT_EQ(encode_unsigned_sample(8, 300.0).to_u64(), 255u);
  EXPECT_EQ(encode_unsigned_sample(8, 0.4).to_u64(), 0u);
}

TEST(Distributions, GaussianTwosSignBalance) {
  GaussianTwosSource source(64, GaussianParams{0.0, std::ldexp(1.0, 20)});
  vlcsa::arith::BlockRng rng(13);
  int negatives = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = source.next(rng);
    if (a.sign_bit()) ++negatives;
    if (b.sign_bit()) ++negatives;
  }
  EXPECT_GT(negatives, n * 2 * 3 / 10);
  EXPECT_LT(negatives, n * 2 * 7 / 10);
}

TEST(Distributions, ToStringIsStable) {
  EXPECT_STREQ(to_string(InputDistribution::kUniformUnsigned).c_str(), "uniform-unsigned");
  EXPECT_STREQ(to_string(InputDistribution::kGaussianTwos).c_str(),
               "gaussian-twos-complement");
}

TEST(Distributions, ParseDistributionRoundTripsEveryValue) {
  // Exhaustive over the enum: parse must be the exact inverse of to_string.
  for (const auto dist :
       {InputDistribution::kUniformUnsigned, InputDistribution::kUniformTwos,
        InputDistribution::kGaussianUnsigned, InputDistribution::kGaussianTwos}) {
    InputDistribution parsed = InputDistribution::kUniformUnsigned;
    ASSERT_TRUE(parse_distribution(to_string(dist), parsed)) << to_string(dist);
    EXPECT_EQ(parsed, dist);
  }
}

TEST(Distributions, ParseDistributionRejectsUnknownText) {
  InputDistribution parsed = InputDistribution::kGaussianTwos;
  EXPECT_FALSE(parse_distribution("uniform", parsed));
  EXPECT_FALSE(parse_distribution("Uniform-Unsigned", parsed));  // case-sensitive
  EXPECT_FALSE(parse_distribution("", parsed));
  EXPECT_FALSE(parse_distribution("uniform-unsigned ", parsed));  // full-string match
  EXPECT_EQ(parsed, InputDistribution::kGaussianTwos);  // untouched on failure
}

}  // namespace
}  // namespace vlcsa::arith
