#pragma once
// Formal combinational equivalence checking between two netlists, via BDDs.
//
// Unlike the randomized simulation checks in the test utilities, this
// *proves* equality over the full input space — the right tool for "the
// optimizer preserved the function", "every prefix topology adds", and "the
// VLCSA recovery bank equals an exact adder".
//
// Inputs are matched by port name across the two netlists (the sets must be
// identical).  The BDD variable order interleaves bus bits — names like
// "a[3]"/"b[3]" sort by (index, base) — which keeps adder cones linear-sized.

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlcsa::netlist {

enum class Verdict {
  kEquivalent,
  kNotEquivalent,
  kResourceLimit,  // BDD node limit hit before a verdict
};

struct EquivalenceResult {
  Verdict verdict = Verdict::kResourceLimit;
  /// First output pair that differs (named as in netlist a).
  std::string mismatch_output;
  /// Input assignment witnessing the mismatch (input name -> value).
  std::vector<std::pair<std::string, bool>> counterexample;
  /// Outputs actually compared.
  std::size_t outputs_compared = 0;
  /// Peak BDD nodes used.
  std::size_t bdd_nodes = 0;

  [[nodiscard]] bool equivalent() const { return verdict == Verdict::kEquivalent; }
};

/// Proves (or refutes) that every comparable output of `a` equals the
/// correspondingly named output of `b`.
///
/// With a non-empty `output_map`, exactly the mapped a-outputs are compared
/// against the named b-outputs (e.g. {"rec[0]" -> "sum[0]"} checks a
/// recovery bank against an adder, ignoring the speculative ports).  With an
/// empty map, outputs with identical names in both netlists are compared.
/// At least one output must be comparable.
[[nodiscard]] EquivalenceResult prove_equivalent(
    const Netlist& a, const Netlist& b,
    const std::map<std::string, std::string>& output_map = {},
    std::size_t node_limit = 5000000);

}  // namespace vlcsa::netlist
