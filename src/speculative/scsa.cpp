#include "speculative/scsa.hpp"

#include <stdexcept>

namespace vlcsa::spec {

const char* to_string(ScsaVariant variant) {
  switch (variant) {
    case ScsaVariant::kScsa1: return "scsa1";
    case ScsaVariant::kScsa2: return "scsa2";
  }
  return "?";
}

ScsaModel::ScsaModel(ScsaConfig config)
    : config_(config), layout_(config.width, config.window) {}

ScsaEvaluation ScsaModel::evaluate(const ApInt& a, const ApInt& b) const {
  if (a.width() != config_.width || b.width() != config_.width) {
    throw std::invalid_argument("ScsaModel: operand width mismatch");
  }
  const int m = layout_.count();

  ScsaEvaluation ev;
  ev.spec0 = ApInt(config_.width);
  ev.spec1 = ApInt(config_.width);
  ev.recovered = ApInt(config_.width);
  ev.window_g.resize(static_cast<std::size_t>(m));
  ev.window_p.resize(static_cast<std::size_t>(m));

  const auto exact = ApInt::add(a, b);
  ev.exact = exact.sum;
  ev.exact_cout = exact.carry_out;

  // Per-window conditional sums and group signals, in machine words.
  std::vector<std::uint64_t> sum0(static_cast<std::size_t>(m));
  std::vector<std::uint64_t> sum1(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::uint64_t aw = a.extract(pos, size);
    const std::uint64_t bw = b.extract(pos, size);
    const std::uint64_t mask =
        size >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << size) - 1);
    const std::uint64_t raw = aw + bw;  // size <= 63: no machine overflow
    sum0[static_cast<std::size_t>(i)] = raw & mask;
    sum1[static_cast<std::size_t>(i)] = (raw + 1) & mask;
    ev.window_g[static_cast<std::size_t>(i)] = ((raw >> size) & 1) != 0;
    ev.window_p[static_cast<std::size_t>(i)] = (aw ^ bw) == mask;
  }

  // Speculative carries: S*,0 uses the previous window's group generate;
  // S*,1 uses the previous window's carry-out-assuming-carry-in-1 (G | P).
  // Exception (deviation from the thesis's literal equations, see
  // DESIGN.md): window 0's carry-in is the known constant 0, so its
  // carry-out G0 is *exact* — window 1's S*,1 select uses it directly
  // instead of G0 | P0.  Without this, a small remainder-sized first window
  // (e.g. 2 bits at n = 512, k = 17) makes P(window-0 propagates) large and
  // VLCSA 2 stalls on ~ERR0/4 of all inputs instead of ~0.01%.
  // Exact recovery threads the true window carries (Fig 5.2's prefix adder).
  bool carry0 = false, carry1 = false, carry_exact = false;
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout_.window(i);
    const std::size_t w = static_cast<std::size_t>(i);
    ev.spec0.deposit(pos, size, carry0 ? sum1[w] : sum0[w]);
    ev.spec1.deposit(pos, size, carry1 ? sum1[w] : sum0[w]);
    ev.recovered.deposit(pos, size, carry_exact ? sum1[w] : sum0[w]);
    const bool g = ev.window_g[w];
    const bool p = ev.window_p[w];
    ev.spec0_cout = g || (p && carry0);
    ev.spec1_cout = g || (p && carry1);
    ev.recovered_cout = g || (p && carry_exact);
    carry0 = g;
    carry1 = (i == 0) ? g : (g || p);
    carry_exact = g || (p && carry_exact);
  }

  // Detection (Figs 5.1 and 6.7).  ERR1 starts at window pair (1, 2): the
  // i = 0 term is unnecessary once window 1's S*,1 select is exact.
  for (int i = 0; i + 1 < m; ++i) {
    const std::size_t w = static_cast<std::size_t>(i);
    ev.err0 = ev.err0 || (ev.window_g[w] && ev.window_p[w + 1]);
    if (i >= 1) ev.err1 = ev.err1 || (ev.window_p[w] && !ev.window_p[w + 1]);
  }
  return ev;
}

namespace {

/// The window sweep over bit-plane groups of `lw` words, with the per-bit
/// generate/propagate computed on the fly from the operand planes (no
/// materialized g/p arrays — the sweep is their only consumer, so fusing
/// halves the memory traffic of the hot loop).  kW > 0 bakes the lane-word
/// count into the instantiation (fully unrolled lane loops for the common
/// widths); kW == 0 is the generic runtime-width fallback.  All lane-group
/// signals live in fixed stack buffers (lw <= kMaxLaneWords, enforced by
/// BitSlicedBatch).
///
/// A speculative result differs from the exact sum iff some window's
/// carry-in select differs from the true carry into that window: a select
/// mismatch flips that window's conditional sum (adding 1 modulo 2^size
/// always changes it), and when every select matches, the carry-out
/// expression G | (P & c) matches too.  Selects per scsa.hpp: S*,0 uses
/// G_{i-1}; S*,1 uses G_0 for window 1 (the window-0 carry-out is exact) and
/// G_{i-1} | P_{i-1} beyond.  The exact carry into window i is threaded
/// through the window chain (c' = G | (P & c)) — windows partition the bit
/// range, so this equals the full prefix carry at the window boundary and no
/// Kogge-Stone pass is needed on this path.
template <int kW>
void scsa_sweep(const WindowLayout& layout, const std::uint64_t* a, const std::uint64_t* b,
                int lw_runtime, ScsaBatchEvaluation& out) {
  const int lw = kW > 0 ? kW : lw_runtime;
  constexpr int kBuf = kW > 0 ? kW : arith::kMaxLaneWords;
  std::uint64_t wg[kBuf], wp[kBuf], prev_g[kBuf], prev_p[kBuf], c_exact[kBuf];
  std::uint64_t spec0_wrong[kBuf], spec1_wrong[kBuf], err0[kBuf], err1[kBuf];
  for (int w = 0; w < lw; ++w) {
    prev_g[w] = prev_p[w] = c_exact[w] = 0;
    spec0_wrong[w] = spec1_wrong[w] = err0[w] = err1[w] = 0;
  }
  const int m = layout.count();
  for (int i = 0; i < m; ++i) {
    const auto [pos, size] = layout.window(i);
    for (int w = 0; w < lw; ++w) {
      wg[w] = 0;
      wp[w] = ~std::uint64_t{0};
    }
    const std::uint64_t* pa = a + static_cast<std::size_t>(pos) * lw;
    const std::uint64_t* pb = b + static_cast<std::size_t>(pos) * lw;
    for (int bit = 0; bit < size; ++bit, pa += lw, pb += lw) {
      for (int w = 0; w < lw; ++w) {
        const std::uint64_t gen = pa[w] & pb[w];
        const std::uint64_t prop = pa[w] ^ pb[w];
        wg[w] = gen | (prop & wg[w]);
        wp[w] &= prop;
      }
    }
    if (i > 0) {
      for (int w = 0; w < lw; ++w) {
        // c_exact currently holds the exact carry *into* window i (out of
        // windows [0, i)).
        const std::uint64_t exact_in = c_exact[w];
        const std::uint64_t sel0 = prev_g[w];
        const std::uint64_t sel1 = i == 1 ? prev_g[w] : (prev_g[w] | prev_p[w]);
        spec0_wrong[w] |= sel0 ^ exact_in;
        spec1_wrong[w] |= sel1 ^ exact_in;
        // Detection pairs (Figs 5.1 and 6.7), same indexing as the scalar
        // loop: ERR0 over pairs (0,1)..(m-2,m-1), ERR1 starting at (1,2).
        err0[w] |= prev_g[w] & wp[w];
        if (i >= 2) err1[w] |= prev_p[w] & ~wp[w];
      }
    }
    for (int w = 0; w < lw; ++w) {
      c_exact[w] = wg[w] | (wp[w] & c_exact[w]);
      prev_g[w] = wg[w];
      prev_p[w] = wp[w];
    }
  }
  const std::size_t lws = static_cast<std::size_t>(lw);
  out.spec0_wrong.assign(spec0_wrong, spec0_wrong + lws);
  out.spec1_wrong.assign(spec1_wrong, spec1_wrong + lws);
  out.err0.assign(err0, err0 + lws);
  out.err1.assign(err1, err1 + lws);
}

}  // namespace

void ScsaModel::evaluate_batch(const BitSlicedBatch& batch, ScsaBatchEvaluation& out) const {
  if (batch.width() != config_.width) {
    throw std::invalid_argument("ScsaModel: batch width mismatch");
  }
  const int lw = batch.lane_words();
  switch (lw) {
    case 1: scsa_sweep<1>(layout_, batch.a(), batch.b(), lw, out); break;
    case 2: scsa_sweep<2>(layout_, batch.a(), batch.b(), lw, out); break;
    case 4: scsa_sweep<4>(layout_, batch.a(), batch.b(), lw, out); break;
    case 8: scsa_sweep<8>(layout_, batch.a(), batch.b(), lw, out); break;
    default: scsa_sweep<0>(layout_, batch.a(), batch.b(), lw, out); break;
  }
}

}  // namespace vlcsa::spec
