#pragma once
// Window segmentation shared by the behavioral models and the netlist
// generators (Ch. 4): an n-bit addition is split into m = ceil(n/k) windows;
// when n is not a multiple of k the *first* (least-significant) window takes
// the remainder — the paper places the odd-sized window at the bottom "for
// reducing the delay of the speculative adder", exactly like the classic
// carry-select sizing argument.

#include <stdexcept>
#include <string>
#include <vector>

namespace vlcsa::spec {

struct Window {
  int pos = 0;   // bit position of the window's LSB
  int size = 0;  // window width in bits
};

class WindowLayout {
 public:
  /// Builds the layout for an n-bit adder with window size k.
  /// Constraints: 1 <= k <= 63 (window chunks must fit a machine word for
  /// the behavioral models) and k <= n is not required — k >= n collapses to
  /// a single window (no speculation).
  WindowLayout(int width, int window_size) : width_(width), window_size_(window_size) {
    if (width < 1) throw std::invalid_argument("adder width must be >= 1");
    if (window_size < 1 || window_size > 63) {
      throw std::invalid_argument("window size must be in [1, 63]");
    }
    const int k = std::min(window_size, width);
    const int m = (width + k - 1) / k;
    windows_.reserve(static_cast<std::size_t>(m));
    const int first = width - k * (m - 1);
    windows_.push_back(Window{0, first});
    for (int i = 1; i < m; ++i) windows_.push_back(Window{first + k * (i - 1), k});
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int window_size() const { return window_size_; }
  [[nodiscard]] int count() const { return static_cast<int>(windows_.size()); }
  [[nodiscard]] const Window& window(int i) const { return windows_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

 private:
  int width_;
  int window_size_;
  std::vector<Window> windows_;
};

}  // namespace vlcsa::spec
