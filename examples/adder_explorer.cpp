// Adder explorer — the "C++ programs which ... generate Verilog files" flow
// of Ch. 7.1 as a command-line tool.  Builds any generator in the library,
// prints synthesis metrics, and optionally writes the structural Verilog.
//
//   $ ./build/examples/adder_explorer --design=vlcsa2 --width=64 --window=13
//   $ ./build/examples/adder_explorer --design=kogge-stone --width=128 \
//         --verilog=ks128.v
//   $ ./build/examples/adder_explorer --list

#include <fstream>
#include <iostream>
#include <string>

#include "adders/adders.hpp"
#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "netlist/verilog.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"
#include "speculative/vlsa.hpp"

using namespace vlcsa;

namespace {

const char* kDesigns[] = {"ripple",      "carry-select", "carry-skip",  "kogge-stone",
                          "brent-kung",  "sklansky",     "han-carlson", "hybrid-ks-carry-select",
                          "designware",  "scsa1",        "scsa2",       "vlcsa1",
                          "vlcsa2",      "vlsa"};

void print_usage() {
  std::cout << "usage: adder_explorer [--design=NAME] [--width=N] [--window=K]\n"
               "                      [--chain=L] [--verilog=FILE] [--list]\n"
               "  --design   one of the generators (default kogge-stone)\n"
               "  --width    adder width in bits (default 64)\n"
               "  --window   SCSA/VLCSA window size (default: sized for 0.01%)\n"
               "  --chain    VLSA speculative chain length (default: published)\n"
               "  --verilog  write structural Verilog to FILE\n"
               "  --list     list available designs\n";
}

netlist::Netlist build(const std::string& design, int width, int window, int chain) {
  using adders::AdderKind;
  if (design == "scsa1" || design == "scsa2") {
    const auto variant = design == "scsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_scsa_netlist({width, window}, variant);
  }
  if (design == "vlcsa1" || design == "vlcsa2") {
    const auto variant = design == "vlcsa1" ? spec::ScsaVariant::kScsa1 : spec::ScsaVariant::kScsa2;
    return spec::build_vlcsa_netlist({width, window}, variant);
  }
  if (design == "vlsa") return spec::build_vlsa_netlist({width, chain});
  for (const auto kind :
       {AdderKind::kRipple, AdderKind::kCarrySelect, AdderKind::kCarrySkip,
        AdderKind::kKoggeStone, AdderKind::kBrentKung, AdderKind::kSklansky,
        AdderKind::kHanCarlson, AdderKind::kHybridKsCarrySelect, AdderKind::kDesignWare}) {
    if (design == to_string(kind)) return adders::build_adder_netlist(kind, width);
  }
  throw std::invalid_argument("unknown design: " + design + " (try --list)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string design = "kogge-stone";
  std::string verilog_path;
  int width = 64;
  int window = 0;
  int chain = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const char* d : kDesigns) std::cout << "  " << d << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    const auto value = [&arg](const std::string& prefix) { return arg.substr(prefix.size()); };
    if (arg.rfind("--design=", 0) == 0) {
      design = value("--design=");
    } else if (arg.rfind("--width=", 0) == 0) {
      width = std::stoi(value("--width="));
    } else if (arg.rfind("--window=", 0) == 0) {
      window = std::stoi(value("--window="));
    } else if (arg.rfind("--chain=", 0) == 0) {
      chain = std::stoi(value("--chain="));
    } else if (arg.rfind("--verilog=", 0) == 0) {
      verilog_path = value("--verilog=");
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage();
      return 2;
    }
  }

  try {
    if (window == 0) window = spec::min_window_for_error_rate(width, 1e-4);
    if (chain == 0) {
      chain = (width == 64 || width == 128 || width == 256 || width == 512)
                  ? spec::vlsa_published_chain_length(width)
                  : std::min(width, window + 3);
    }

    const auto netlist = build(design, width, window, chain);
    const auto result = harness::synthesize(netlist);

    harness::Table table({"metric", "value"});
    table.add_row({"design", result.name});
    table.add_row({"gates (optimized)", std::to_string(result.gates)});
    table.add_row({"area [inv]", harness::fmt_fixed(result.area, 0)});
    table.add_row({"critical delay [tau]", harness::fmt_fixed(result.delay, 1)});
    for (const auto& [group, delay] : result.group_delay) {
      if (!group.empty()) {
        table.add_row({"delay of '" + group + "' [tau]", harness::fmt_fixed(delay, 1)});
      }
    }
    table.add_row({"max primary-input fanout", std::to_string(result.max_input_fanout)});
    table.print(std::cout);

    if (!verilog_path.empty()) {
      std::ofstream out(verilog_path);
      if (!out) throw std::runtime_error("cannot open " + verilog_path);
      netlist::emit_verilog(netlist::optimize(netlist), out);
      std::cout << "wrote Verilog to " << verilog_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
