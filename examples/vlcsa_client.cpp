// vlcsa_client — command-line client for the experiment service daemon
// (vlcsa_serve): builds one protocol request from flags, sends it over the
// Unix domain socket or TCP, prints the response line to stdout, and exits 0
// iff the response says "status": "ok".  Protocol reference in DESIGN.md.
//
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=run
//         --experiment=table7.1/n64 --samples=200000 --seed=7
//   $ ./build/examples/vlcsa_client --tcp=127.0.0.1:7411 --request=list
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=metrics
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=shutdown
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock
//         --send='{"request": "describe", "experiment": "eq5.2/n64-uniform"}'

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/json.hpp"
#include "harness/montecarlo.hpp"
#include "harness/report.hpp"
#include "service/fleet.hpp"
#include "service/server.hpp"

using namespace vlcsa;

namespace {

void print_usage() {
  std::cout
      << "usage: vlcsa_client (--socket=PATH | --tcp=HOST:PORT)\n"
         "                    (--request=run|run-batch|list|describe|cache-stats\n"
         "                               |metrics|metrics-prom|drain|shutdown\n"
         "                     [--experiment=NAME] [--samples=N] [--seed=S]\n"
         "                     [--eval-path=batched|scalar] [--prefix=P]\n"
         "                     [--run-timeout-ms=T] [--trace] [--trace-id=ID]\n"
         "                     | --send=JSONLINE)\n"
         "                    [--connect-timeout-ms=N] [--timeout-ms=N]\n"
         "                    [--retries=N] [--retry-base-ms=T]\n"
         "  --socket    Unix domain socket vlcsa_serve listens on\n"
         "  --tcp       TCP endpoint vlcsa_serve listens on\n"
         "  --request   protocol request to build from the flags below\n"
         "              (metrics-prom prints the Prometheus text exposition\n"
         "              unwrapped from its JSON envelope)\n"
         "  --experiment, --samples, --seed, --eval-path   run/describe fields\n"
         "  --prefix    list filter (experiment-name prefix)\n"
         "  --run-timeout-ms   server-side run deadline (\"timeout_ms\" field)\n"
         "  --trace     ask the server to echo the request's span tree\n"
         "              (\"trace\": true) in the response envelope\n"
         "  --trace-id  correlation id to stamp on the request (\"trace_id\")\n"
         "  --send      send this raw request line instead of building one\n"
         "  --connect-timeout-ms   keep retrying the connect this long\n"
         "                         (default 0 = single attempt)\n"
         "  --timeout-ms   client I/O deadline: fail instead of hanging if the\n"
         "                 server goes silent (default 0 = wait forever)\n"
         "  --retries      retry a refused connect, a transport failure, or an\n"
         "                 overloaded/draining error reply up to N times with\n"
         "                 exponential backoff + jitter (default 0 = no retry)\n"
         "  --retry-base-ms   first backoff step; doubles per retry, capped at\n"
         "                 5000 ms (default 100)\n"
         "exit status: 0 response ok, 1 response/transport error, 2 usage error\n";
}

/// Splits "HOST:PORT" on the last ':'.
bool parse_host_port(const std::string& value, std::string& host, int& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) return false;
  host = value.substr(0, colon);
  return harness::parse_nonnegative_int(value.substr(colon + 1), port) && port <= 65535;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;
  std::string request;
  std::string experiment;
  std::string eval_path;
  std::string prefix;
  std::string raw_line;
  std::uint64_t samples = 0;
  bool samples_given = false;
  std::uint64_t seed = 1;
  bool seed_given = false;
  std::uint64_t run_timeout_ms = 0;
  bool run_timeout_given = false;
  int connect_timeout_ms = 0;
  int io_timeout_ms = 0;
  bool trace = false;
  std::string trace_id;
  service::fleet::RetryPolicy retry_policy;
  bool retry_base_given = false;

  const auto store_string = [](std::string& field) {
    return [&field](const std::string& value) {
      if (value.empty()) return false;
      field = value;
      return true;
    };
  };
  const std::vector<harness::ValueFlag> flags = {
      {"--socket", store_string(socket_path)},
      {"--tcp",
       [&](const std::string& value) { return parse_host_port(value, tcp_host, tcp_port); }},
      {"--request", store_string(request)},
      {"--experiment", store_string(experiment)},
      {"--eval-path",
       [&](const std::string& value) {
         harness::EvalPath parsed;  // validate now, forward the text verbatim
         if (!harness::parse_eval_path(value, parsed)) return false;
         eval_path = value;
         return true;
       }},
      {"--prefix", store_string(prefix)},
      {"--send", store_string(raw_line)},
      {"--samples",
       [&](const std::string& value) {
         samples_given = true;
         return harness::parse_u64(value, samples);
       }},
      {"--seed",
       [&](const std::string& value) {
         seed_given = true;
         return harness::parse_u64(value, seed);
       }},
      {"--run-timeout-ms",
       [&](const std::string& value) {
         run_timeout_given = true;
         return harness::parse_u64(value, run_timeout_ms) && run_timeout_ms > 0;
       }},
      {"--connect-timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, connect_timeout_ms);
       }},
      {"--timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, io_timeout_ms);
       }},
      {"--trace-id", store_string(trace_id)},
      {"--retries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, retry_policy.attempts);
       }},
      {"--retry-base-ms",
       [&](const std::string& value) {
         retry_base_given = true;
         return harness::parse_nonnegative_int(value, retry_policy.base_ms) &&
                retry_policy.base_ms > 0;
       }},
  };

  // --trace and --help take no value, so they sit outside the ValueFlag set.
  std::vector<const char*> value_args;
  value_args.push_back(argc > 0 ? argv[0] : "vlcsa_client");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      value_args.push_back(argv[i]);
    }
  }
  if (const std::string error = harness::parse_value_flags(
          static_cast<int>(value_args.size()), value_args.data(), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  const bool tcp = tcp_port >= 0;
  if (socket_path.empty() == !tcp) {
    std::cerr << "error: exactly one of --socket=PATH or --tcp=HOST:PORT is required\n";
    return 2;
  }
  if (request.empty() == raw_line.empty()) {
    std::cerr << "error: exactly one of --request or --send is required\n";
    return 2;
  }
  if (retry_base_given && retry_policy.attempts == 0) {
    // A backoff base without retries would be silently dead.
    std::cerr << "error: --retry-base-ms requires --retries\n";
    return 2;
  }

  std::string line = raw_line;
  if (!request.empty()) {
    // Only fields the user supplied go into the request — the service is
    // strict and rejects fields a request type does not take.
    harness::JsonObject object;
    object.add("request", request);
    if (!experiment.empty()) object.add("experiment", experiment);
    if (samples_given) object.add("samples", samples);
    if (seed_given) object.add("seed", seed);
    if (!eval_path.empty()) object.add("eval_path", eval_path);
    if (!prefix.empty()) object.add("prefix", prefix);
    if (run_timeout_given) object.add("timeout_ms", run_timeout_ms);
    if (trace) object.add("trace", true);
    if (!trace_id.empty()) object.add("trace_id", trace_id);
    line = object.render_line();
  }

  service::ServiceClient client;
  const std::string connect_error =
      tcp ? client.connect_tcp_or_error(tcp_host, tcp_port, connect_timeout_ms)
          : client.connect_or_error(socket_path, connect_timeout_ms);
  if (!connect_error.empty() && retry_policy.attempts == 0) {
    // With retries the backoff loop redials — a daemon that is still coming
    // up (or rotating) is exactly what retries exist for.
    std::cerr << "error: " << connect_error << "\n";
    return 1;
  }
  if (connect_error.empty() && io_timeout_ms > 0) {
    if (const std::string error = client.set_io_timeout_ms(io_timeout_ms); !error.empty()) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
  }
  std::string response;
  std::uint64_t retries = 0;
  const std::string transport_error =
      retry_policy.attempts > 0 ? client.roundtrip_with_retry(line, response, retry_policy, &retries)
                                : client.roundtrip(line, response);
  if (retries > 0) std::cerr << "vlcsa_client: retried " << retries << " time(s)\n";
  if (!transport_error.empty()) {
    std::cerr << "error: " << transport_error << "\n";
    return 1;
  }
  const harness::JsonParse parsed = harness::parse_json(response);
  if (!parsed.ok()) {
    std::cout << response << "\n";
    std::cerr << "error: malformed response: " << parsed.error << "\n";
    return 1;
  }
  const harness::JsonValue* status = parsed.value.find("status");
  const bool ok = status != nullptr && status->kind() == harness::JsonValue::Kind::kString &&
                  status->as_string() == "ok";

  // A body-carrying ok response (metrics-prom) prints its payload unwrapped:
  // the exposition text as a scraper would see it, not the JSON envelope.
  const harness::JsonValue* body = parsed.value.find("body");
  if (ok && body != nullptr && body->kind() == harness::JsonValue::Kind::kString &&
      parsed.value.find("content_type") != nullptr) {
    std::cout << body->as_string();
  } else {
    std::cout << response << "\n";
  }
  return ok ? 0 : 1;
}
