#pragma once
// A compact reduced-ordered BDD package, used by the formal equivalence
// checker (equivalence.hpp) to *prove* — not sample — that generated
// netlists implement addition, that the optimizer preserves functions, and
// that the VLCSA recovery path is exact.
//
// Design notes: classic unique-table + ITE with a computed cache, no
// complement edges (simplicity over peak capacity).  Adder cones with an
// interleaved variable order stay small (O(n) nodes), so 64-bit datapaths
// verify in milliseconds.

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace vlcsa::netlist {

class BddManager {
 public:
  /// Handle to a BDD node.  0 and 1 are the terminal constants.
  using NodeRef = std::uint32_t;
  static constexpr NodeRef kFalse = 0;
  static constexpr NodeRef kTrue = 1;

  /// Creates a manager over `num_vars` variables; variable index order is
  /// the BDD order (index 0 at the top).
  explicit BddManager(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }

  /// The projection function of variable `index`.
  [[nodiscard]] NodeRef var(int index);

  [[nodiscard]] NodeRef not_(NodeRef f);
  [[nodiscard]] NodeRef and_(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef or_(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef xor_(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  /// Number of live nodes (terminals included).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Evaluates `f` under a full variable assignment.
  [[nodiscard]] bool evaluate(NodeRef f, const std::vector<bool>& assignment) const;

  /// Returns a satisfying assignment of `f`, or nullopt when f == false.
  /// Unconstrained variables default to 0.
  [[nodiscard]] std::optional<std::vector<bool>> find_satisfying(NodeRef f) const;

  /// Count of satisfying assignments over all num_vars() variables (as a
  /// double: adders overflow 64-bit counts quickly).
  [[nodiscard]] double count_satisfying(NodeRef f) const;

  /// Throws std::runtime_error once node_count() exceeds this (0 = off).
  void set_node_limit(std::size_t limit) { node_limit_ = limit; }

 private:
  struct Node {
    int var;      // variable index; terminals use num_vars_
    NodeRef lo;   // cofactor var = 0
    NodeRef hi;   // cofactor var = 1
  };

  struct TripleHash {
    std::size_t operator()(const std::array<std::uint32_t, 3>& k) const {
      std::size_t h = k[0];
      h = h * 0x9e3779b97f4a7c15ull ^ k[1];
      h = h * 0x9e3779b97f4a7c15ull ^ k[2];
      return h;
    }
  };

  [[nodiscard]] NodeRef make_node(int var, NodeRef lo, NodeRef hi);
  [[nodiscard]] int var_of(NodeRef f) const { return nodes_[f].var; }

  int num_vars_;
  std::size_t node_limit_ = 0;
  std::vector<Node> nodes_;
  std::unordered_map<std::array<std::uint32_t, 3>, NodeRef, TripleHash> unique_;
  std::unordered_map<std::array<std::uint32_t, 3>, NodeRef, TripleHash> ite_cache_;
};

}  // namespace vlcsa::netlist
