// vlcsa_serve — the experiment service daemon (src/service): a long-running
// front end over the experiment registry with a two-tier result cache, so
// repeated table/figure reproductions and wide adder-comparison sweeps stop
// paying cold-start and re-sampling costs.  Speaks newline-delimited JSON
// over a Unix domain socket, TCP, or stdin/stdout with --stdio; --socket and
// --tcp may be combined (one cache, one worker pool, both transports);
// protocol reference in DESIGN.md, operational runbook in docs/OPERATIONS.md.
//
//   $ ./build/examples/vlcsa_serve --socket=/tmp/vlcsa.sock --cache-dir=.vlcsa-cache &
//   $ ./build/examples/vlcsa_client --socket=/tmp/vlcsa.sock --request=run
//         --experiment=table7.1/n64 --samples=200000
//   $ ./build/examples/vlcsa_serve --tcp=127.0.0.1:7411 --cache-dir=.vlcsa-cache &
//   $ echo '{"request": "run", "experiment": "table7.1/n64"}'
//         | ./build/examples/vlcsa_serve --stdio --cache-dir=.vlcsa-cache

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/cli.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace vlcsa;

namespace {

// SIGTERM/SIGINT request a graceful drain (rotation scripts `kill` the pid
// from --pid-file).  The handler only sets a flag; a watcher thread calls
// begin_drain() from normal context — everything interesting is
// async-signal-unsafe.
volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int) { g_signal = 1; }

void print_usage() {
  std::cout << "usage: vlcsa_serve [--socket=PATH] [--tcp=HOST:PORT] [--stdio]\n"
               "                   [--cache-dir=DIR] [--cache-max-bytes=N]\n"
               "                   [--memory-entries=N] [--threads=T] [--workers=N]\n"
               "                   [--timeout-ms=T] [--max-pending=N]\n"
               "                   [--trace-log=FILE] [--access-log=FILE]\n"
               "                   [--access-log-max-bytes=N] [--slow-ms=T]\n"
               "                   [--pid-file=FILE] [--drain-ms=T]\n"
               "                   [--max-requests-per-conn=N] [--idle-timeout-ms=T]\n"
               "                   [--lease-stale-ms=T]\n"
               "  --socket           Unix domain socket path to listen on\n"
               "  --tcp              TCP endpoint to listen on (port 0 = ephemeral;\n"
               "                     the bound port is printed on stderr); may be\n"
               "                     combined with --socket\n"
               "  --stdio            serve stdin/stdout instead of a socket (one-shot\n"
               "                     pipelines and tests)\n"
               "  --cache-dir        on-disk result cache directory (created if absent;\n"
               "                     default: no disk tier)\n"
               "  --cache-max-bytes  disk-tier byte cap: stores evict the oldest record\n"
               "                     files until the tier fits (default 0 = unbounded)\n"
               "  --memory-entries   in-memory LRU capacity (default 64; 0 disables)\n"
               "  --threads          engine threads per experiment run, 0 = all\n"
               "                     hardware threads (default 0)\n"
               "  --workers          warm connection-worker pool size (default 2)\n"
               "  --timeout-ms       default per-run deadline; a run past it is\n"
               "                     cancelled and answers a timeout error (default 0 =\n"
               "                     none; requests may override with \"timeout_ms\")\n"
               "  --max-pending      reject new connections with an \"overloaded\" error\n"
               "                     once this many await a worker (default 128; 0 =\n"
               "                     queue unboundedly)\n"
               "  --trace-log        JSONL request-trace sink: one line per request with\n"
               "                     its span tree (and engine profile on cache misses)\n"
               "  --access-log       JSONL access-log sink: one compact line per request\n"
               "                     (timestamp, trace id, type, cache, latency, code)\n"
               "  --access-log-max-bytes  rotate the access log to FILE.1 when a write\n"
               "                     would push it past N bytes (default 0 = unbounded)\n"
               "  --slow-ms          flag requests at/over this wall time with\n"
               "                     \"slow\": true in the logs (default 0 = never)\n"
               "  --pid-file         write the daemon pid here once the listeners are\n"
               "                     bound; removed again on clean exit (rotation\n"
               "                     scripts `kill` this pid to drain)\n"
               "  --drain-ms         graceful-drain deadline: on SIGTERM/SIGINT or a\n"
               "                     drain request, wait this long for in-flight runs\n"
               "                     before cancelling them (default 30000)\n"
               "  --max-requests-per-conn  close a keep-alive conversation after this\n"
               "                     many requests (default 0 = unbounded)\n"
               "  --idle-timeout-ms  close a conversation idle this long (default 0 =\n"
               "                     never)\n"
               "  --lease-stale-ms   fleet cache sharing: age past which another\n"
               "                     replica's compute lease or .tmp file counts as\n"
               "                     crashed and is taken over (default 30000; 0 =\n"
               "                     never take over)\n";
}

/// Splits "HOST:PORT" on the last ':' (tolerates IPv6 hosts like ::1:7411
/// only via the last-colon rule; bracketed forms are not needed here).
bool parse_host_port(const std::string& value, std::string& host, int& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) return false;
  host = value.substr(0, colon);
  return harness::parse_nonnegative_int(value.substr(colon + 1), port) && port <= 65535;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = -1;  // -1 = --tcp not given (0 is a valid ephemeral request)
  bool stdio = false;
  bool show_help = false;
  service::ServiceConfig config;
  service::SocketServer::Options server_options;
  int memory_entries = 64;
  bool workers_given = false;
  bool max_pending_given = false;
  std::string pid_file;
  bool drain_ms_given = false;
  bool conn_limits_given = false;
  bool lease_stale_given = false;

  const std::vector<harness::ValueFlag> flags = {
      {"--socket",
       [&](const std::string& value) {
         if (value.empty()) return false;
         socket_path = value;
         return true;
       }},
      {"--tcp",
       [&](const std::string& value) { return parse_host_port(value, tcp_host, tcp_port); }},
      {"--cache-dir",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.cache_dir = value;
         return true;
       }},
      {"--cache-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, config.cache_max_bytes);
       }},
      {"--memory-entries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, memory_entries);
       }},
      {"--threads",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.threads);
       }},
      {"--workers",
       [&](const std::string& value) {
         workers_given = true;
         return harness::parse_nonnegative_int(value, server_options.workers) &&
                server_options.workers > 0;
       }},
      {"--timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.timeout_ms);
       }},
      {"--max-pending",
       [&](const std::string& value) {
         max_pending_given = true;
         return harness::parse_nonnegative_int(value, server_options.max_pending);
       }},
      {"--trace-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.trace_log = value;
         return true;
       }},
      {"--access-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         config.access_log = value;
         return true;
       }},
      {"--access-log-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, config.access_log_max_bytes);
       }},
      {"--slow-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, config.slow_ms);
       }},
      {"--pid-file",
       [&](const std::string& value) {
         if (value.empty()) return false;
         pid_file = value;
         return true;
       }},
      {"--drain-ms",
       [&](const std::string& value) {
         drain_ms_given = true;
         return harness::parse_nonnegative_int(value, server_options.drain_ms);
       }},
      {"--max-requests-per-conn",
       [&](const std::string& value) {
         conn_limits_given = true;
         return harness::parse_nonnegative_int(value, server_options.max_requests_per_conn);
       }},
      {"--idle-timeout-ms",
       [&](const std::string& value) {
         conn_limits_given = true;
         return harness::parse_nonnegative_int(value, server_options.idle_timeout_ms);
       }},
      {"--lease-stale-ms",
       [&](const std::string& value) {
         lease_stale_given = true;
         return harness::parse_nonnegative_int(value, config.lease_stale_ms);
       }},
  };

  // --stdio and --help take no value, so they sit outside the ValueFlag set.
  std::vector<const char*> value_args;
  value_args.push_back(argc > 0 ? argv[0] : "vlcsa_serve");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--help" || arg == "-h") {
      show_help = true;
    } else {
      value_args.push_back(argv[i]);
    }
  }
  if (show_help) {
    print_usage();
    return 0;
  }
  if (const std::string error = harness::parse_value_flags(
          static_cast<int>(value_args.size()), value_args.data(), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }
  const bool tcp = tcp_port >= 0;
  if (!stdio && socket_path.empty() && !tcp) {
    std::cerr << "error: one of --socket=PATH, --tcp=HOST:PORT or --stdio is required\n";
    print_usage();
    return 2;
  }
  if (stdio && (!socket_path.empty() || tcp)) {
    std::cerr << "error: --stdio is mutually exclusive with --socket/--tcp\n";
    print_usage();
    return 2;
  }
  if (config.cache_max_bytes != 0 && config.cache_dir.empty()) {
    // A silently dead cap would suggest bounded disk usage that isn't there.
    std::cerr << "error: --cache-max-bytes requires --cache-dir\n";
    print_usage();
    return 2;
  }
  if (config.access_log_max_bytes != 0 && config.access_log.empty()) {
    // A silently dead rotation cap would suggest bounded logs that aren't.
    std::cerr << "error: --access-log-max-bytes requires --access-log\n";
    print_usage();
    return 2;
  }
  if (config.slow_ms != 0 && config.trace_log.empty() && config.access_log.empty()) {
    // The slow flag only surfaces in log lines; without a sink it is dead.
    std::cerr << "error: --slow-ms requires --trace-log or --access-log\n";
    print_usage();
    return 2;
  }
  if (stdio && (workers_given || max_pending_given)) {
    // Stdio serving is one conversation on one stream; silently dead
    // --workers/--max-pending would suggest parallelism that isn't there.
    std::cerr << "error: --workers/--max-pending only apply to socket mode\n";
    print_usage();
    return 2;
  }
  if (stdio && (drain_ms_given || conn_limits_given || !pid_file.empty())) {
    // Same principle: these only shape socket-mode connection handling.
    std::cerr << "error: --pid-file/--drain-ms/--max-requests-per-conn/"
                 "--idle-timeout-ms only apply to socket mode\n";
    print_usage();
    return 2;
  }
  if (lease_stale_given && config.cache_dir.empty()) {
    // The lease/scratch staleness age only matters for a shared disk tier.
    std::cerr << "error: --lease-stale-ms requires --cache-dir\n";
    print_usage();
    return 2;
  }
  config.memory_entries = static_cast<std::size_t>(memory_entries);

  service::ExperimentService service(config);
  if (const std::string& error = service.log_error(); !error.empty()) {
    // Refuse to serve without a requested log rather than silently dropping
    // the operator's observability.
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (stdio) {
    service::serve_stdio(std::cin, std::cout, service);
    return 0;
  }

  std::vector<service::ListenerSpec> listeners;
  if (!socket_path.empty()) {
    listeners.push_back(service::ListenerSpec::unix_socket(socket_path));
  }
  if (tcp) listeners.push_back(service::ListenerSpec::tcp(tcp_host, tcp_port));

  service::SocketServer server(std::move(listeners), service, server_options);
  if (const std::string error = server.listen_or_error(); !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  // The pid file appears only once the listeners are bound, so a rotation
  // script that sees it can connect immediately.
  if (!pid_file.empty()) {
    std::ofstream pid_out(pid_file, std::ios::trunc);
    pid_out << ::getpid() << "\n";
    pid_out.flush();
    if (!pid_out) {
      std::cerr << "error: cannot write pid file " << pid_file << "\n";
      return 1;
    }
  }
  std::cerr << "vlcsa_serve: listening on";
  if (!socket_path.empty()) std::cerr << " " << socket_path;
  if (tcp) std::cerr << " " << tcp_host << ":" << server.tcp_port();
  std::cerr << (config.cache_dir.empty() ? " (memory cache only)"
                                         : ", cache dir " + config.cache_dir)
            << "\n";

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::atomic<bool> serve_done{false};
  std::thread signal_watcher([&] {
    while (!serve_done.load(std::memory_order_relaxed)) {
      if (g_signal != 0) server.begin_drain();  // idempotent
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  const std::string serve_error = server.serve();
  serve_done.store(true, std::memory_order_relaxed);
  signal_watcher.join();
  if (!pid_file.empty()) std::remove(pid_file.c_str());
  if (!serve_error.empty()) {
    std::cerr << "error: " << serve_error << "\n";
    return 1;
  }
  return 0;
}
