// BlockRng sequence-identity suite: the repo-owned block-generating
// MT19937-64 must be bit-identical to std::mt19937_64 under every
// construction path (value seed, default seed, std::seed_seq, degenerate
// all-zero sequences), through both the per-call and generate_block APIs at
// every block-boundary alignment, and on every planeops backend (the SIMD
// twist is pinned to the std engine directly, not just to the scalar twist).
// This identity is what lets the whole repo swap draw sites onto BlockRng
// without moving a single Monte Carlo counter.

#include "arith/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "arith/planeops.hpp"

namespace vlcsa::arith {
namespace {

std::vector<planeops::Backend> available_backends() {
  std::vector<planeops::Backend> out;
  for (const auto b : {planeops::Backend::kScalar, planeops::Backend::kAvx2,
                       planeops::Backend::kAvx512, planeops::Backend::kNeon}) {
    if (planeops::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// Runs the test body on every available backend (the RNG twist/temper ride
/// the planeops dispatch), restoring the entry backend afterwards.
class RngBackendTest : public ::testing::TestWithParam<planeops::Backend> {
 protected:
  void SetUp() override {
    if (!planeops::backend_available(GetParam())) {
      GTEST_SKIP() << planeops::to_string(GetParam())
                   << " backend not supported on this host";
    }
    ASSERT_TRUE(planeops::set_backend(GetParam()));
  }
  void TearDown() override { planeops::set_backend(prev_); }

 private:
  planeops::Backend prev_ = planeops::active_backend();
};

TEST_P(RngBackendTest, FirstMillionDrawsMatchStdEngineAcrossSeeds) {
  for (const std::uint64_t seed :
       {std::uint64_t{5489}, std::uint64_t{0}, std::uint64_t{1},
        std::uint64_t{0x9E3779B97F4A7C15ULL}}) {
    std::mt19937_64 ref(seed);
    BlockRng rng(seed);
    for (int i = 0; i < 1000000; ++i) {
      ASSERT_EQ(rng(), ref()) << "seed " << seed << " draw " << i;
    }
  }
}

TEST_P(RngBackendTest, DefaultConstructionMatchesStdEngine) {
  std::mt19937_64 ref;
  BlockRng rng;
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(rng(), ref()) << "draw " << i;
}

TEST_P(RngBackendTest, SeedSeqConstructionMatchesStdEngine) {
  {
    std::seed_seq ref_seq{1u, 2u, 3u, 4u};
    std::seed_seq our_seq{1u, 2u, 3u, 4u};
    std::mt19937_64 ref(ref_seq);
    BlockRng rng(our_seq);
    for (int i = 0; i < 100000; ++i) ASSERT_EQ(rng(), ref()) << "draw " << i;
  }
  {
    // Empty seed_seq: generate() falls back to its fixed pattern.
    std::seed_seq ref_seq;
    std::seed_seq our_seq;
    std::mt19937_64 ref(ref_seq);
    BlockRng rng(our_seq);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(rng(), ref()) << "draw " << i;
  }
}

TEST_P(RngBackendTest, MakeStreamRngMatchesStdEngineUnderSameSeedSeq) {
  // make_stream_rng is the one shared seeding helper (make_shard_rng
  // delegates to it): its stream must equal a std engine built from the
  // identical seed_seq, for several (seed, stream) pairs including ones
  // that exercise the high halves.
  const std::uint64_t seeds[] = {1, 42, 0xFFFFFFFF00000001ULL};
  const std::uint64_t streams[] = {0, 1, 7, 0x100000000ULL};
  for (const std::uint64_t seed : seeds) {
    for (const std::uint64_t stream : streams) {
      std::seed_seq sequence{
          static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32),
          static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)};
      std::mt19937_64 ref(sequence);
      BlockRng rng = make_stream_rng(seed, stream);
      for (int i = 0; i < 10000; ++i) {
        ASSERT_EQ(rng(), ref()) << "seed " << seed << " stream " << stream << " draw " << i;
      }
    }
  }
}

/// Seed sequence yielding all-zero words: exercises the [rand.eng.mers]
/// degenerate-state fixup (state word 0 pinned to 2^63).  std::seed_seq can
/// never produce this, so a hand-rolled sequence drives both engines.
struct ZeroSeedSeq {
  using result_type = std::uint32_t;
  template <typename It>
  void generate(It first, It last) {
    for (; first != last; ++first) *first = 0;
  }
};

TEST_P(RngBackendTest, AllZeroSeedSequenceFixupMatchesStdEngine) {
  ZeroSeedSeq ref_seq, our_seq;
  std::mt19937_64 ref(ref_seq);
  BlockRng rng(our_seq);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(rng(), ref()) << "draw " << i;
}

TEST_P(RngBackendTest, GenerateBlockStraddlesBlockBoundaries) {
  // Counts around the 312-word state size, plus 624 (exactly two blocks)
  // and a couple of odd sizes; after each bulk pull the per-call stream
  // must still be aligned with the std engine (interleaving contract).
  for (const std::size_t count : {std::size_t{311}, std::size_t{312}, std::size_t{313},
                                  std::size_t{624}, std::size_t{1}, std::size_t{1000}}) {
    for (const std::size_t warmup : {std::size_t{0}, std::size_t{5}, std::size_t{311}}) {
      std::mt19937_64 ref(99);
      BlockRng rng(99);
      for (std::size_t i = 0; i < warmup; ++i) ASSERT_EQ(rng(), ref());
      std::vector<std::uint64_t> buf(count);
      rng.generate_block(buf.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(buf[i], ref()) << "count " << count << " warmup " << warmup
                                 << " word " << i;
      }
      for (int i = 0; i < 700; ++i) {
        ASSERT_EQ(rng(), ref()) << "post-block draw " << i;
      }
    }
  }
}

TEST_P(RngBackendTest, GenerateBlockZeroCountIsANoOp) {
  std::mt19937_64 ref(3);
  BlockRng rng(3);
  rng.generate_block(nullptr, 0);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(rng(), ref());
}

TEST_P(RngBackendTest, DiscardMatchesStdEngine) {
  for (const unsigned long long skip : {1ull, 311ull, 312ull, 313ull, 12345ull}) {
    std::mt19937_64 ref(17);
    BlockRng rng(17);
    ref.discard(skip);
    rng.discard(skip);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(rng(), ref()) << "skip " << skip;
  }
}

TEST_P(RngBackendTest, ReseedingResetsTheStream) {
  BlockRng rng(1);
  for (int i = 0; i < 500; ++i) (void)rng();
  rng.seed(123);
  std::mt19937_64 ref(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(rng(), ref()) << "draw " << i;
}

TEST_P(RngBackendTest, FeedsStdDistributionsLikeTheStdEngine) {
  // The Gaussian sources hand BlockRng to std::normal_distribution; equal
  // engines must induce equal variates (identical consumption pattern).
  std::mt19937_64 ref(2026);
  BlockRng rng(2026);
  std::normal_distribution<double> ref_dist(0.0, 4294967296.0);
  std::normal_distribution<double> our_dist(0.0, 4294967296.0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(our_dist(rng), ref_dist(ref)) << "variate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RngBackendTest,
                         ::testing::ValuesIn(available_backends()),
                         [](const ::testing::TestParamInfo<planeops::Backend>& info) {
                           return std::string(planeops::to_string(info.param));
                         });

TEST(RngAccountingTest, WordsDrawnCountsEveryConsumptionPath) {
  BlockRng rng(11);
  EXPECT_EQ(rng.words_drawn(), 0u);
  for (int i = 0; i < 7; ++i) (void)rng();
  EXPECT_EQ(rng.words_drawn(), 7u);

  // generate_block consumes exactly its word count, at any alignment
  // (including spans crossing the 312-word block boundary).
  std::vector<std::uint64_t> buf(500);
  rng.generate_block(buf.data(), buf.size());
  EXPECT_EQ(rng.words_drawn(), 507u);

  // discard counts too — the skipped words are consumed stream positions.
  rng.discard(1000);
  EXPECT_EQ(rng.words_drawn(), 1507u);
  (void)rng();
  EXPECT_EQ(rng.words_drawn(), 1508u);

  // Reseeding resets the account along with the stream.
  rng.seed(11);
  EXPECT_EQ(rng.words_drawn(), 0u);
}

TEST(RngCopySemanticsTest, CopyConstructionSnapshotsTheStream) {
  // Copying from a non-const generator must pick the copy constructor (as
  // it does for std::mt19937_64), not the SeedSeq template — both copies
  // then continue the identical stream from the snapshot point.
  BlockRng original(31);
  for (int i = 0; i < 500; ++i) (void)original();
  BlockRng copy(original);
  BlockRng assigned;
  assigned = original;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t expected = original();
    ASSERT_EQ(copy(), expected) << "draw " << i;
    ASSERT_EQ(assigned(), expected) << "draw " << i;
  }
}

TEST(RngCrossBackendTest, ScalarAndSimdTwistProduceIdenticalStreams) {
  // Direct backend-vs-backend pin (independent of the std engine), with a
  // backend switch mid-stream: a live generator must continue the exact
  // sequence when dispatch changes under it.
  const auto backends = available_backends();
  planeops::Backend prev = planeops::active_backend();
  ASSERT_TRUE(planeops::set_backend(planeops::Backend::kScalar));
  BlockRng oracle(7);
  std::vector<std::uint64_t> expected(5000);
  oracle.generate_block(expected.data(), expected.size());
  for (const auto backend : backends) {
    ASSERT_TRUE(planeops::set_backend(backend));
    BlockRng rng(7);
    std::vector<std::uint64_t> got(expected.size());
    rng.generate_block(got.data(), got.size());
    EXPECT_EQ(got, expected) << planeops::to_string(backend);
  }
  if (backends.size() > 1) {
    ASSERT_TRUE(planeops::set_backend(planeops::Backend::kScalar));
    BlockRng rng(7);
    std::vector<std::uint64_t> head(1000), tail(4000);
    rng.generate_block(head.data(), head.size());
    ASSERT_TRUE(planeops::set_backend(backends.back()));
    rng.generate_block(tail.data(), tail.size());
    for (std::size_t i = 0; i < head.size(); ++i) ASSERT_EQ(head[i], expected[i]);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      ASSERT_EQ(tail[i], expected[head.size() + i]) << "post-switch word " << i;
    }
  }
  planeops::set_backend(prev);
}

}  // namespace
}  // namespace vlcsa::arith
