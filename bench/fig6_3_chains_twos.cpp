// Fig 6.3 — carry-chain length statistics for 2's-complement uniform inputs
// (random sign x uniform magnitude) on a 32-bit adder.

#include <iostream>

#include "arith/distributions.hpp"
#include "bench_util.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  const auto args = harness::BenchArgs::parse(argc, argv, 1000000);
  harness::print_banner(std::cout, "Figure 6.3",
                        "Carry-chain length statistics, 2's-complement uniform inputs, "
                        "32-bit adder, " + std::to_string(args.samples) + " additions.");

  arith::CarryChainProfiler profiler(32, arith::ChainMetric::kAllChains);
  arith::UniformTwosSource source(32);
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < args.samples; ++i) {
    const auto [a, b] = source.next(rng);
    profiler.record(a, b);
  }
  bench::print_chain_histogram(profiler);
  std::cout << "\nExpected shape: still short-chain dominated, similar to unsigned\n"
               "uniform (Ch. 6.3's first observation): uniform magnitudes rarely\n"
               "create the small-negative-plus-small-positive pattern.\n";
  return 0;
}
