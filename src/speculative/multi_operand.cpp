#include "speculative/multi_operand.hpp"

#include <stdexcept>

namespace vlcsa::spec {

std::pair<ApInt, ApInt> carry_save_compress(const ApInt& a, const ApInt& b, const ApInt& c) {
  const ApInt sum = a ^ b ^ c;
  const ApInt majority = (a & b) | (a & c) | (b & c);
  return {sum, majority.shl(1)};
}

std::pair<ApInt, ApInt> carry_save_reduce(std::span<const ApInt> operands, int width) {
  std::vector<ApInt> level;
  level.reserve(operands.size());
  for (const ApInt& op : operands) {
    if (op.width() != width) {
      throw std::invalid_argument("carry_save_reduce: operand width mismatch");
    }
    level.push_back(op);
  }
  while (level.size() > 2) {
    std::vector<ApInt> next;
    next.reserve((level.size() * 2) / 3 + 2);
    std::size_t i = 0;
    while (i + 3 <= level.size()) {
      auto [s, c] = carry_save_compress(level[i], level[i + 1], level[i + 2]);
      next.push_back(std::move(s));
      next.push_back(std::move(c));
      i += 3;
    }
    for (; i < level.size(); ++i) next.push_back(level[i]);
    level = std::move(next);
  }
  if (level.empty()) return {ApInt(width), ApInt(width)};
  if (level.size() == 1) return {level[0], ApInt(width)};
  return {level[0], level[1]};
}

int csa_tree_levels(int operands) {
  int levels = 0;
  int m = operands;
  while (m > 2) {
    m = m - (m / 3);  // each full 3:2 group turns 3 rows into 2
    ++levels;
  }
  return levels;
}

MultiOperandResult MultiOperandAdder::add(std::span<const ApInt> operands) const {
  const int width = final_adder_.config().width;
  MultiOperandResult out;
  out.tree_levels = csa_tree_levels(static_cast<int>(operands.size()));
  const auto [s, c] = carry_save_reduce(operands, width);
  const auto step = final_adder_.step(s, c);
  out.sum = step.result;
  out.cout = step.cout;
  out.cycles = step.cycles;
  out.stalled = step.stalled;
  return out;
}

}  // namespace vlcsa::spec
