#pragma once
// Behavioral models of SCSA 1 / SCSA 2 (Chs. 3, 4, 6) — the reference
// semantics against which the generated netlists are equivalence-checked,
// and the engine behind every Monte Carlo experiment.
//
// Conventions (matching the paper):
//  * No external carry-in; the first window's carry-in is 0.
//  * A window's two conditional results (carry-in 0 / 1) come from the same
//    group P/G computation; SCSA 1 selects with the previous window's
//    group-generate signal, SCSA 2 additionally forms S*,1 selected with the
//    previous window's carry-out-assuming-carry-in-1 (G | P).
//  * "Result" includes the carry-out bit, so the detection identity
//    ERR0 == (S*,0 wrong) holds exactly for SCSA 1 (see error_model.hpp).

#include <cstdint>
#include <vector>

#include "arith/apint.hpp"
#include "arith/bitslice.hpp"
#include "speculative/window.hpp"

namespace vlcsa::spec {

using arith::ApInt;
using arith::BitSlicedBatch;

enum class ScsaVariant {
  kScsa1,  // single speculative result, detector ERR0 (Ch. 5)
  kScsa2,  // dual speculative results, detectors ERR0/ERR1 (Ch. 6)
};

[[nodiscard]] const char* to_string(ScsaVariant variant);

struct ScsaConfig {
  int width = 64;   // n
  int window = 14;  // k
};

/// Everything one SCSA evaluation produces.  Fields are grouped by the
/// hardware block that computes them.
struct ScsaEvaluation {
  // Exact reference.
  ApInt exact;
  bool exact_cout = false;

  // Speculative datapath.
  ApInt spec0;  // S*,0 — the SCSA 1 result
  bool spec0_cout = false;
  ApInt spec1;  // S*,1 — the extra SCSA 2 result (== spec0 for variant 1 queries)
  bool spec1_cout = false;

  // Detection block.
  bool err0 = false;
  bool err1 = false;

  // Recovery block (always exact by construction; kept for invariant tests).
  ApInt recovered;
  bool recovered_cout = false;

  // Per-window group signals (inputs to detection/recovery).
  std::vector<bool> window_g;
  std::vector<bool> window_p;

  [[nodiscard]] bool spec0_correct() const {
    return spec0 == exact && spec0_cout == exact_cout;
  }
  [[nodiscard]] bool spec1_correct() const {
    return spec1 == exact && spec1_cout == exact_cout;
  }
  /// Paper's Table 7.2 correctness notion: either speculative result matches.
  [[nodiscard]] bool either_correct() const { return spec0_correct() || spec1_correct(); }

  /// VLCSA 1 stalls (2 cycles) when ERR0 flags.
  [[nodiscard]] bool vlcsa1_stall() const { return err0; }
  /// VLCSA 2 stalls only when both detectors flag (Ch. 6.7 case 3).
  [[nodiscard]] bool vlcsa2_stall() const { return err0 && err1; }

  /// The single-cycle result VLCSA 2 emits when it does not stall:
  /// S*,0 if ERR0 = 0, else S*,1 (Ch. 6.7 cases 1/2).
  [[nodiscard]] const ApInt& vlcsa2_selected() const { return err0 ? spec1 : spec0; }
  [[nodiscard]] bool vlcsa2_selected_cout() const { return err0 ? spec1_cout : spec0_cout; }
  [[nodiscard]] bool vlcsa2_selected_correct() const {
    return vlcsa2_selected() == exact && vlcsa2_selected_cout() == exact_cout;
  }
};

/// Word-parallel SCSA evaluation of a whole batch (64 * lane_words samples):
/// every field is a lane-mask group of lane_words() words — bit j of word w
/// refers to sample w*64 + j of the batch.  Only correctness/detection
/// *predicates* are materialized (not the speculative sums themselves) —
/// S*,0 differs from the exact sum iff some window's speculative carry-in
/// select differs from the true carry into that window, so the per-sample
/// comparison collapses to boolean algebra over window G/P planes.  The
/// scalar evaluate() remains the oracle; the differential tests pin the two
/// paths bit-identical across lane widths and planeops backends.
struct ScsaBatchEvaluation {
  arith::planeops::PlaneVec spec0_wrong;  // S*,0 (incl. carry-out) != exact
  arith::planeops::PlaneVec spec1_wrong;  // S*,1 (incl. carry-out) != exact
  arith::planeops::PlaneVec err0;         // detector ERR0 fired
  arith::planeops::PlaneVec err1;         // detector ERR1 fired

  [[nodiscard]] int lane_words() const { return static_cast<int>(err0.size()); }

  /// Table 7.2 correctness notion, negated: neither result matches.
  [[nodiscard]] std::uint64_t either_wrong(int w) const {
    return spec0_wrong[static_cast<std::size_t>(w)] & spec1_wrong[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] std::uint64_t vlcsa1_stall(int w) const {
    return err0[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] std::uint64_t vlcsa2_stall(int w) const {
    return err0[static_cast<std::size_t>(w)] & err1[static_cast<std::size_t>(w)];
  }
  /// Wrongness of the result VLCSA 2 emits when it does not stall
  /// (S*,0 if ERR0 = 0, else S*,1).
  [[nodiscard]] std::uint64_t vlcsa2_selected_wrong(int w) const {
    const std::size_t i = static_cast<std::size_t>(w);
    return (err0[i] & spec1_wrong[i]) | (~err0[i] & spec0_wrong[i]);
  }

  // No plane-sized scratch: generate/propagate fuse into the window sweep
  // and the exact carries thread window G/P through the window chain, so no
  // full-width prefix pass is needed here (unlike the VLSA batch).
};

/// Behavioral SCSA evaluator.  One instance is reusable across calls and
/// cheap to evaluate (a few machine-word operations per window).
class ScsaModel {
 public:
  explicit ScsaModel(ScsaConfig config);

  [[nodiscard]] const ScsaConfig& config() const { return config_; }
  [[nodiscard]] const WindowLayout& layout() const { return layout_; }

  /// Full evaluation (both variants' signals are always produced).
  [[nodiscard]] ScsaEvaluation evaluate(const ApInt& a, const ApInt& b) const;

  /// Bit-sliced evaluation of 64 samples in one pass (thread-safe: all
  /// mutable state lives in `out`).  Produces exactly the lane masks the
  /// Monte Carlo counters need; see ScsaBatchEvaluation.
  void evaluate_batch(const BitSlicedBatch& batch, ScsaBatchEvaluation& out) const;

 private:
  ScsaConfig config_;
  WindowLayout layout_;
};

}  // namespace vlcsa::spec
