#include "speculative/multiplier_netlist.hpp"

#include <string>
#include <vector>

namespace vlcsa::spec {

namespace {

using netlist::Netlist;
using netlist::Signal;

struct FullAdderOut {
  Signal sum;
  Signal carry;
};

FullAdderOut full_adder(Netlist& nl, Signal a, Signal b, Signal c) {
  const Signal ab = nl.xor_(a, b);
  return {nl.xor_(ab, c), nl.or_(nl.and_(a, b), nl.and_(ab, c))};
}

FullAdderOut half_adder(Netlist& nl, Signal a, Signal b) {
  return {nl.xor_(a, b), nl.and_(a, b)};
}

}  // namespace

netlist::Netlist build_multiplier_netlist(const MultiplierNetlistConfig& config,
                                          const ScsaNetlistOptions& opts) {
  const int n = config.width;
  const int product_bits = 2 * n;
  Netlist nl("specmul_" + std::to_string(n) + "_k" + std::to_string(config.window));

  std::vector<Signal> a, b;
  for (int i = 0; i < n; ++i) a.push_back(nl.add_input("a[" + std::to_string(i) + "]"));
  for (int i = 0; i < n; ++i) b.push_back(nl.add_input("b[" + std::to_string(i) + "]"));

  // Partial-product array, organized by result column.
  std::vector<std::vector<Signal>> columns(static_cast<std::size_t>(product_bits));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      columns[static_cast<std::size_t>(i + j)].push_back(
          nl.and_(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]));
    }
  }

  // Wallace-style reduction: per pass, each column compresses groups of 3
  // with full adders (carry into the next column of the next pass) and a
  // leftover pair with a half adder, until every column holds at most 2.
  auto needs_reduction = [&columns] {
    for (const auto& col : columns) {
      if (col.size() > 2) return true;
    }
    return false;
  };
  while (needs_reduction()) {
    std::vector<std::vector<Signal>> next(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const auto fa = full_adder(nl, col[i], col[i + 1], col[i + 2]);
        next[c].push_back(fa.sum);
        if (c + 1 < next.size()) next[c + 1].push_back(fa.carry);
        i += 3;
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const auto ha = half_adder(nl, col[i], col[i + 1]);
        next[c].push_back(ha.sum);
        if (c + 1 < next.size()) next[c + 1].push_back(ha.carry);
        i += 2;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
  }

  // Final two rows for the carry-propagate VLCSA.
  std::vector<Signal> row0(static_cast<std::size_t>(product_bits));
  std::vector<Signal> row1(static_cast<std::size_t>(product_bits));
  for (std::size_t c = 0; c < columns.size(); ++c) {
    row0[c] = columns[c].empty() ? nl.constant(false) : columns[c][0];
    row1[c] = columns[c].size() < 2 ? nl.constant(false) : columns[c][1];
  }

  const VlcsaPorts ports =
      build_vlcsa_on_signals(nl, row0, row1, config.window, config.variant, opts);

  for (int i = 0; i < product_bits; ++i) {
    nl.add_output("product[" + std::to_string(i) + "]",
                  ports.sum0[static_cast<std::size_t>(i)], kGroupSpec);
  }
  if (config.variant == ScsaVariant::kScsa2) {
    for (int i = 0; i < product_bits; ++i) {
      nl.add_output("product1[" + std::to_string(i) + "]",
                    ports.sum1[static_cast<std::size_t>(i)], kGroupSpec);
    }
  }
  nl.add_output("err0", ports.err0, kGroupDetect);
  if (config.variant == ScsaVariant::kScsa2) nl.add_output("err1", ports.err1, kGroupDetect);
  nl.add_output("stall", ports.stall, kGroupDetect);
  nl.add_output("valid", nl.not_(ports.stall), kGroupDetect);
  for (int i = 0; i < product_bits; ++i) {
    nl.add_output("rec[" + std::to_string(i) + "]",
                  ports.recovered[static_cast<std::size_t>(i)], kGroupRecovery);
  }
  return nl;
}

}  // namespace vlcsa::spec
