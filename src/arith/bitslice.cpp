#include "arith/bitslice.hpp"

#include <algorithm>
#include <stdexcept>

namespace vlcsa::arith {

void transpose_64x64(std::uint64_t block[64]) { planeops::transpose_64x64(block); }

int default_lane_words() {
  return planeops::active_backend() == planeops::Backend::kAvx512 ? 2 * kDefaultLaneWords
                                                                  : kDefaultLaneWords;
}

void transpose_to_planes(const ApInt* samples, int count, int width, std::uint64_t* planes,
                         int lane_words, int lane_word) {
  if (count < 0 || count > kBatchLanes) {
    throw std::invalid_argument("transpose_to_planes: count must be in [0, 64]");
  }
  if (lane_words < 1 || lane_word < 0 || lane_word >= lane_words) {
    throw std::invalid_argument("transpose_to_planes: lane word out of range");
  }
  for (int j = 0; j < count; ++j) {
    if (samples[j].width() != width) {
      throw std::invalid_argument("transpose_to_planes: sample width mismatch");
    }
  }
  const int limbs = (width + ApInt::kLimbBits - 1) / ApInt::kLimbBits;
  std::uint64_t block[64];
  for (int limb = 0; limb < limbs; ++limb) {
    for (int j = 0; j < count; ++j) block[j] = samples[j].limb(limb);
    for (int j = count; j < 64; ++j) block[j] = 0;
    transpose_64x64(block);
    block_to_planes(block, limb, width, planes, lane_words, lane_word);
  }
}

void block_to_planes(const std::uint64_t block[64], int limb, int width,
                     std::uint64_t* planes, int lane_words, int lane_word) {
  const int base = limb * ApInt::kLimbBits;
  const int top = std::min(width - base, ApInt::kLimbBits);
  for (int bit = 0; bit < top; ++bit) {
    planes[static_cast<std::size_t>(base + bit) * static_cast<std::size_t>(lane_words) +
           static_cast<std::size_t>(lane_word)] = block[bit];
  }
}

ApInt plane_lane(const std::uint64_t* planes, int width, int lane, int lane_words) {
  if (lane < 0 || lane >= kBatchLanes * lane_words) {
    throw std::invalid_argument("plane_lane: lane out of range");
  }
  const int lane_word = lane / kBatchLanes;
  const int lane_bit = lane % kBatchLanes;
  ApInt out(width);
  for (int bit = 0; bit < width; ++bit) {
    const std::uint64_t word =
        planes[static_cast<std::size_t>(bit) * static_cast<std::size_t>(lane_words) +
               static_cast<std::size_t>(lane_word)];
    out.set_bit(bit, ((word >> lane_bit) & 1) != 0);
  }
  return out;
}

namespace {

/// Validates the batch shape BEFORE the member initializers allocate, so a
/// negative argument throws invalid_argument instead of attempting a
/// wrapped-around near-2^64 allocation.
std::size_t checked_plane_words(int width, int lane_words) {
  if (width < 1) throw std::invalid_argument("BitSlicedBatch: width must be >= 1");
  if (lane_words < 1 || lane_words > kMaxLaneWords) {
    throw std::invalid_argument("BitSlicedBatch: lane_words must be in [1, 16]");
  }
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(lane_words);
}

}  // namespace

BitSlicedBatch::BitSlicedBatch(int width, int lane_words)
    : width_(width),
      lane_words_(lane_words),
      a_(checked_plane_words(width, lane_words), 0),
      b_(a_.size(), 0) {}

void BitSlicedBatch::load(const std::vector<ApInt>& a, const std::vector<ApInt>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("BitSlicedBatch::load: operand counts differ");
  }
  if (a.size() > static_cast<std::size_t>(lanes())) {
    throw std::invalid_argument("BitSlicedBatch::load: more samples than lanes");
  }
  const int count = static_cast<int>(a.size());
  for (int w = 0; w < lane_words_; ++w) {
    const int begin = std::min(w * kBatchLanes, count);
    const int group = std::min(count - begin, kBatchLanes);
    transpose_to_planes(a.data() + begin, group, width_, a_.data(), lane_words_, w);
    transpose_to_planes(b.data() + begin, group, width_, b_.data(), lane_words_, w);
  }
}

std::pair<ApInt, ApInt> BitSlicedBatch::lane(int lane) const {
  return {plane_lane(a_.data(), width_, lane, lane_words_),
          plane_lane(b_.data(), width_, lane, lane_words_)};
}

void kogge_stone_carries(const std::uint64_t* g, const std::uint64_t* p, int n,
                         int lane_words, std::uint64_t* carry,
                         planeops::PlaneVec& pp_scratch) {
  pp_scratch.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words));
  planeops::kogge_stone(g, p, n, lane_words, carry, pp_scratch.data());
}

}  // namespace vlcsa::arith
