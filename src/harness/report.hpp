#pragma once
// Fixed-width table/series printers shared by all bench binaries, plus the
// tiny CLI parser they use for --samples/--seed overrides.  Output format is
// deliberately paper-like: one bench binary regenerates one table or figure
// as rows on stdout (see DESIGN.md "Per-experiment index").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace vlcsa::harness {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal ordered JSON object writer: the machine-readable result records
/// the explorer's --json flag emits (BENCH_*.json) and the service protocol's
/// request/response/cache-record lines (src/service).  Fields are written in
/// insertion order; records stay flat so they diff cleanly across
/// perf-trajectory runs, while add_json embeds one pre-rendered sub-value
/// where the protocol nests a record inside a response.  Rendering is a pure
/// function of the added fields — byte-identical output for identical fields
/// is what makes cached records comparable against fresh recomputation.
class JsonObject {
 public:
  void add(const std::string& key, const std::string& value);
  void add(const std::string& key, const char* value);
  void add(const std::string& key, std::uint64_t value);
  void add(const std::string& key, double value);
  void add(const std::string& key, int value);
  void add(const std::string& key, bool value);

  /// Embeds `rendered_json` verbatim as the value (caller guarantees it is
  /// one valid JSON value, e.g. another JsonObject's render_line()).
  void add_json(const std::string& key, std::string rendered_json);

  /// Writes "{...}\n", one field per line.
  void write(std::ostream& os) const;

  /// Renders the object on a single line: {"a": 1, "b": "x"} — the
  /// newline-delimited service protocol's framing unit.
  [[nodiscard]] std::string render_line() const;

 private:
  void add_raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

struct RunProfile;  // engine.hpp

/// Renders one RunProfile as a single-line JSON object — the "profile"
/// payload of service trace lines and adder_explorer --profile.  Pure
/// observability output; never embedded in a cached result record.
[[nodiscard]] std::string render_run_profile(const RunProfile& profile);

/// Formats a probability as a percentage with `decimals` digits ("0.01%").
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 2);

/// Formats a double with fixed decimals.
[[nodiscard]] std::string fmt_fixed(double value, int decimals = 2);

/// Formats a ratio as a signed percentage difference ("-19%", "+16%").
[[nodiscard]] std::string fmt_delta_pct(double value, double baseline);

/// Formats a probability in scientific notation ("1.14e-04").
[[nodiscard]] std::string fmt_sci(double value);

/// Common bench CLI: --samples=N --seed=S --threads=T (order-free; unknown
/// args fatal).  threads = 0 means "all hardware threads" (engine.hpp).
/// Built on the strict cli.hpp flag parser, so malformed values
/// ("--samples=12x") are rejected exactly like every other front end.
struct BenchArgs {
  std::uint64_t samples = 0;
  std::uint64_t seed = 1;
  int threads = 0;

  /// Parses argv; `default_samples` applies when --samples is absent.
  /// Throws std::invalid_argument on unknown arguments or malformed values
  /// (google-benchmark's --benchmark* flags are tolerated).
  static BenchArgs parse(int argc, char** argv, std::uint64_t default_samples);
};

/// Prints the standard bench banner (artifact id + workload description).
void print_banner(std::ostream& os, const std::string& artifact, const std::string& description);

}  // namespace vlcsa::harness
