// Ablation — prefix topology inside the SCSA window adders.  Ch. 4.1 says
// "two small adders can be implemented using any traditional adder" and
// picks Kogge-Stone for speed; this sweep quantifies the choice (and the
// recovery prefix topology) across the four families at the 0.01% design
// points.

#include <iostream>

#include "harness/report.hpp"
#include "harness/synthesis.hpp"
#include "speculative/error_model.hpp"
#include "speculative/scsa_netlist.hpp"

using namespace vlcsa;

int main(int argc, char** argv) {
  (void)harness::BenchArgs::parse(argc, argv, 0);
  harness::print_banner(std::cout, "Ablation: window-adder topology",
                        "VLCSA 1 delay/area for each prefix topology inside the window "
                        "adders (recovery fixed to Kogge-Stone), 0.01% design points.");

  harness::Table table({"n", "topology", "spec delay", "detect delay", "recovery delay",
                        "area"});
  for (const int n : {64, 256}) {
    const int k = spec::min_window_for_error_rate(n, 1e-4);
    for (const auto topology : adders::all_prefix_topologies()) {
      spec::ScsaNetlistOptions opts;
      opts.window_topology = topology;
      const auto result = harness::synthesize(
          spec::build_vlcsa_netlist(spec::ScsaConfig{n, k}, spec::ScsaVariant::kScsa1, opts));
      table.add_row({std::to_string(n), to_string(topology),
                     harness::fmt_fixed(result.delay_of("spec"), 1),
                     harness::fmt_fixed(result.delay_of("detect"), 1),
                     harness::fmt_fixed(result.delay_of("recovery"), 1),
                     harness::fmt_fixed(result.area, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: Kogge-Stone/Sklansky windows are fastest; Brent-Kung trades\n"
               "~10% delay for the smallest area — the window is small enough (k <= 17)\n"
               "that the differences stay modest, supporting the paper's 'any\n"
               "traditional adder' remark.\n";
  return 0;
}
