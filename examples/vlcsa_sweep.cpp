// vlcsa_sweep — sweep orchestrator for the experiment grid (ROADMAP item 1):
// expands a JSON sweep spec into a deterministic cell list and runs every
// cell, either in-process through an owned service instance (and its result
// cache) or against a running vlcsa_serve daemon over run-batch chunks with
// retry/backoff.  Live progress, a JSONL event log, and a vlcsa-sweep-1
// report make a multi-hour grid watchable, attributable and resumable:
// re-running the same spec against the same cache dir answers prior work as
// cell-cached and only computes the frontier.  Runbook in docs/OPERATIONS.md.
//
//   $ ./build/examples/vlcsa_sweep --spec=grid.json --cache-dir=/tmp/cells
//         --event-log=sweep.jsonl --json=SWEEP_report.json
//   $ ./build/examples/vlcsa_sweep --spec=grid.json --daemon=/tmp/vlcsa.sock
//         --retries=3 --event-log=sweep.jsonl
//   $ ./build/examples/vlcsa_sweep --validate=sweep.jsonl
//
// Exit status: 0 = every cell ok (or a clean --expand/--validate), 1 = any
// failed cell, aborted sweep, or failed validation, 2 = usage error.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "service/fleet.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace vlcsa;

namespace {

void print_usage() {
  std::cout
      << "usage: vlcsa_sweep --spec=FILE [mode] [observability]\n"
         "       vlcsa_sweep --spec=FILE --expand\n"
         "       vlcsa_sweep --validate=FILE\n"
         "mode (default: in-process):\n"
         "  --cache-dir=DIR   in-process result cache (resume runs point the\n"
         "                    next sweep at the same DIR)\n"
         "  --threads=N       in-process engine threads per cell (0 = all)\n"
         "  --daemon=PATH     run against vlcsa_serve on this Unix socket\n"
         "  --tcp=HOST:PORT   run against vlcsa_serve on this TCP endpoint\n"
         "  --retries=N       daemon mode: retry budget per chunk (default 3)\n"
         "  --retry-base-ms=T daemon mode: first backoff step (default 100)\n"
         "  --connect-timeout-ms=T  daemon connect retry window (default 2000)\n"
         "sweep shape:\n"
         "  --chunk=N         cells per run-batch request (default 16)\n"
         "  --timeout-ms=T    per-chunk run deadline (default: server default)\n"
         "observability:\n"
         "  --event-log=FILE  JSONL sweep event log (sweep-start/cell-*/sweep-done)\n"
         "  --event-log-max-bytes=N  rotate the event log at this size\n"
         "  --json=FILE       write the vlcsa-sweep-1 report object here\n"
         "  --progress=on|off live progress line on stderr (default on; use\n"
         "                    off for CI logs)\n"
         "other modes:\n"
         "  --expand          print the expanded cell list (one id per line)\n"
         "                    without running anything\n"
         "  --validate=FILE   validate a sweep event log: every started cell\n"
         "                    has exactly one terminal event and the sweep-done\n"
         "                    counts reconcile; exit 1 when they do not\n"
         "exit status: 0 all cells ok, 1 failed/aborted/invalid, 2 usage error\n";
}

bool parse_host_port(const std::string& value, std::string& host, int& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) return false;
  host = value.substr(0, colon);
  return harness::parse_nonnegative_int(value.substr(colon + 1), port) && port <= 65535;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string validate_path;
  std::string cache_dir;
  std::string daemon_socket;
  std::string tcp_host;
  int tcp_port = -1;
  int threads = 0;
  int chunk = 16;
  int timeout_ms = 0;
  int connect_timeout_ms = 2000;
  std::string event_log_path;
  std::uint64_t event_log_max_bytes = 0;
  std::string json_path;
  bool progress = true;
  bool expand_only = false;
  service::fleet::RetryPolicy retry_policy;
  retry_policy.attempts = 3;

  const std::vector<harness::ValueFlag> flags = {
      {"--spec",
       [&](const std::string& value) {
         if (value.empty()) return false;
         spec_path = value;
         return true;
       }},
      {"--validate",
       [&](const std::string& value) {
         if (value.empty()) return false;
         validate_path = value;
         return true;
       }},
      {"--cache-dir",
       [&](const std::string& value) {
         if (value.empty()) return false;
         cache_dir = value;
         return true;
       }},
      {"--daemon",
       [&](const std::string& value) {
         if (value.empty()) return false;
         daemon_socket = value;
         return true;
       }},
      {"--tcp",
       [&](const std::string& value) { return parse_host_port(value, tcp_host, tcp_port); }},
      {"--threads",
       [&](const std::string& value) { return harness::parse_nonnegative_int(value, threads); }},
      {"--chunk",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, chunk) && chunk > 0;
       }},
      {"--timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, timeout_ms);
       }},
      {"--connect-timeout-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, connect_timeout_ms);
       }},
      {"--retries",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, retry_policy.attempts);
       }},
      {"--retry-base-ms",
       [&](const std::string& value) {
         return harness::parse_nonnegative_int(value, retry_policy.base_ms) &&
                retry_policy.base_ms > 0;
       }},
      {"--event-log",
       [&](const std::string& value) {
         if (value.empty()) return false;
         event_log_path = value;
         return true;
       }},
      {"--event-log-max-bytes",
       [&](const std::string& value) {
         return harness::parse_u64(value, event_log_max_bytes);
       }},
      {"--json",
       [&](const std::string& value) {
         if (value.empty()) return false;
         json_path = value;
         return true;
       }},
      {"--progress",
       [&](const std::string& value) {
         if (value == "on") {
           progress = true;
           return true;
         }
         if (value == "off") {
           progress = false;
           return true;
         }
         return false;
       }},
  };

  // Bare flags (--help, --expand) are peeled off before the strict
  // "--name=value" pass; everything else must address a ValueFlag.
  std::vector<const char*> value_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--expand") {
      expand_only = true;
      continue;
    }
    value_args.push_back(argv[i]);
  }
  if (const std::string error = harness::parse_value_flags(
          static_cast<int>(value_args.size()), value_args.data(), flags);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    print_usage();
    return 2;
  }

  // Validation mode stands alone: it reads one event log and judges it.
  if (!validate_path.empty()) {
    if (!spec_path.empty() || expand_only) {
      std::cerr << "error: --validate does not combine with --spec/--expand\n";
      return 2;
    }
    std::ifstream in(validate_path);
    if (!in) {
      std::cerr << "error: cannot open event log " << validate_path << "\n";
      return 2;
    }
    const harness::SweepLogValidation validation = harness::validate_sweep_event_log(in);
    if (!validation.ok()) {
      std::cerr << "error: " << validate_path << ": " << validation.error << "\n";
      return 1;
    }
    std::cout << "ok: " << validation.cells << " cells (" << validation.computed
              << " computed, " << validation.resumed << " cached, " << validation.failed
              << " failed)\n";
    return 0;
  }

  if (spec_path.empty()) {
    std::cerr << "error: --spec=FILE is required\n";
    return 2;
  }
  const bool tcp = tcp_port >= 0;
  if (!daemon_socket.empty() && tcp) {
    std::cerr << "error: --daemon and --tcp are mutually exclusive\n";
    return 2;
  }
  const bool daemon_mode = !daemon_socket.empty() || tcp;
  if (daemon_mode && !cache_dir.empty()) {
    std::cerr << "error: --cache-dir applies to in-process mode only "
                 "(the daemon owns its cache)\n";
    return 2;
  }

  std::string spec_text;
  {
    std::ifstream in(spec_path);
    if (!in) {
      std::cerr << "error: cannot open sweep spec " << spec_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spec_text = buffer.str();
  }
  const harness::SweepSpecParse parsed = harness::parse_sweep_spec(spec_text);
  if (!parsed.ok()) {
    std::cerr << "error: " << spec_path << ": " << parsed.error << "\n";
    return 2;
  }
  const harness::SweepSpec& spec = parsed.spec;

  if (expand_only) {
    for (const harness::SweepCell& cell : spec.cells) {
      std::cout << cell.id << "\n";
    }
    std::cerr << spec.cells.size() << " cell(s)\n";
    return 0;
  }

  harness::SweepOptions options;
  options.chunk = static_cast<std::size_t>(chunk);
  options.timeout_ms = static_cast<std::uint64_t>(timeout_ms);
  options.progress = progress;
  options.event_log_path = event_log_path;
  options.event_log_max_bytes = event_log_max_bytes;
  // Wall-clock trace-id prefix (loadgen idiom): chunk ids from successive
  // sweep runs stay distinct in a shared daemon trace log.
  {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "sw-%llx",
                  static_cast<unsigned long long>(
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()));
    options.trace_prefix = stamp;
  }

  harness::SweepResult result;
  if (daemon_mode) {
    options.mode = "daemon";
    options.endpoint =
        tcp ? tcp_host + ":" + std::to_string(tcp_port) : daemon_socket;
    service::ServiceClient client;
    const std::string connect_error =
        tcp ? client.connect_tcp_or_error(tcp_host, tcp_port, connect_timeout_ms)
            : client.connect_or_error(daemon_socket, connect_timeout_ms);
    if (!connect_error.empty() && retry_policy.attempts == 0) {
      std::cerr << "error: " << connect_error << "\n";
      return 1;
    }
    result = harness::run_sweep(
        spec, options, [&](const std::string& request, std::string& reply) {
          return client.roundtrip_with_retry(request, reply, retry_policy);
        });
  } else {
    options.mode = "in-process";
    options.endpoint = cache_dir;
    service::ServiceConfig config;
    config.cache_dir = cache_dir;
    config.threads = threads;
    service::ExperimentService service(config);
    result = harness::run_sweep(
        spec, options, [&](const std::string& request, std::string& reply) {
          reply = service.handle_line(request).line;
          return std::string{};
        });
  }

  const std::string report = harness::render_sweep_report(spec, options, result);
  std::cout << report << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write report to " << json_path << "\n";
      return 1;
    }
    out << report << "\n";
  }

  if (!result.ok()) {
    std::cerr << "error: sweep aborted: " << result.error << "\n";
    return 1;
  }
  if (result.failed_cells > 0) {
    std::cerr << "error: " << result.failed_cells << " cell(s) failed\n";
    return 1;
  }
  return 0;
}
