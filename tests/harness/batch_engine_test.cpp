// End-to-end guarantees of the batched Monte Carlo pipeline:
//  * every registered error-rate experiment produces bit-identical
//    ErrorRateResult counters under EvalPath::kBatched vs kScalar;
//  * the scalar tail path (shard sizes not divisible by 64, incl. < 64)
//    preserves that equality;
//  * the thread-count-invariance contract of engine.hpp holds on the
//    batched path too.

#include <gtest/gtest.h>

#include "arith/distributions.hpp"
#include "harness/engine.hpp"
#include "harness/experiments.hpp"
#include "harness/montecarlo.hpp"

namespace vlcsa::harness {
namespace {

TEST(BatchEngineTest, EveryRegistryExperimentBitIdenticalBatchVsScalar) {
  // 1031 samples: prime, so the last shard carries a scalar tail of
  // 1031 % 64 = 7 samples on top of 16 full batches.
  constexpr std::uint64_t kSamples = 1031;
  for (const auto& experiment : error_rate_experiments()) {
    const auto batched = run_experiment(experiment, kSamples, 3, 1, EvalPath::kBatched);
    const auto scalar = run_experiment(experiment, kSamples, 3, 1, EvalPath::kScalar);
    EXPECT_EQ(batched, scalar) << experiment.name;
    EXPECT_EQ(batched.samples, kSamples) << experiment.name;
  }
}

TEST(BatchEngineTest, TailOnlyShardSizesStayBitIdentical) {
  const auto source = arith::make_source(arith::InputDistribution::kGaussianTwos, 64);
  const spec::VlcsaConfig config{64, 9, spec::ScsaVariant::kScsa2};
  // Shard sizes straddling the 64-lane boundary: 1 and 63 are pure scalar
  // tail, 65 and 127 are one batch + tail, 128 is batch-only.
  for (const std::uint64_t shard_size : {1ull, 63ull, 65ull, 127ull, 128ull}) {
    const RunOptions options{300, 11, 2, shard_size};
    const auto batched = run_vlcsa(config, *source, options, EvalPath::kBatched);
    const auto scalar = run_vlcsa(config, *source, options, EvalPath::kScalar);
    EXPECT_EQ(batched, scalar) << "shard size " << shard_size;
    EXPECT_EQ(batched.samples, 300u) << "shard size " << shard_size;
  }
}

TEST(BatchEngineTest, BatchedPathIsLaneWidthInvariant) {
  // lane_words is a pure throughput knob: the merged counters must be
  // bit-identical at every batch width (and any thread count), because the
  // scalar tail keeps each shard's RNG stream equal to per-sample draws.
  const auto* experiment = find_error_rate_experiment("table7.1/n64");
  ASSERT_NE(experiment, nullptr);
  const auto source =
      arith::make_source(experiment->dist, experiment->width, experiment->params);
  const spec::VlcsaConfig config{experiment->width, experiment->window,
                                 spec::ScsaVariant::kScsa1};
  ErrorRateResult reference;
  bool have_reference = false;
  for (const int lane_words : {1, 2, 4, 8}) {
    for (const int threads : {1, 2}) {
      RunOptions options;
      options.samples = 5000;
      options.seed = 23;
      options.threads = threads;
      options.lane_words = lane_words;
      const auto result = run_vlcsa(config, *source, options, EvalPath::kBatched);
      if (!have_reference) {
        reference = result;
        have_reference = true;
      }
      EXPECT_EQ(result, reference) << "W=" << lane_words << " threads=" << threads;
    }
  }
  // And the default width (lane_words = 0 -> kDefaultLaneWords) matches too.
  RunOptions options;
  options.samples = 5000;
  options.seed = 23;
  EXPECT_EQ(run_vlcsa(config, *source, options, EvalPath::kBatched), reference);
}

TEST(BatchEngineTest, BatchedPathIsThreadCountInvariant) {
  const auto* experiment = find_error_rate_experiment("table7.1/n64");
  ASSERT_NE(experiment, nullptr);
  const auto one = run_experiment(*experiment, 5000, 17, 1, EvalPath::kBatched);
  const auto four = run_experiment(*experiment, 5000, 17, 4, EvalPath::kBatched);
  const auto all = run_experiment(*experiment, 5000, 17, 0, EvalPath::kBatched);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, all);
}

TEST(BatchEngineTest, VlsaBatchedMatchesScalarAcrossShardSizes) {
  const auto source = arith::make_source(arith::InputDistribution::kUniformUnsigned, 64);
  const spec::VlsaConfig config{64, 9};
  for (const std::uint64_t shard_size : {1ull, 63ull, 65ull, 127ull}) {
    const RunOptions options{257, 5, 1, shard_size};
    const auto batched = run_vlsa(config, *source, options, EvalPath::kBatched);
    const auto scalar = run_vlsa(config, *source, options, EvalPath::kScalar);
    EXPECT_EQ(batched, scalar) << "shard size " << shard_size;
  }
}

TEST(BatchEngineTest, InvariantsHoldOnBatchedPath) {
  // Detection over-approximates and recovery is exact, on the batched path
  // exactly as on the scalar one.
  for (const auto* name : {"table7.1/n64", "table7.2/n64", "vlsa/n64"}) {
    const auto* experiment = find_error_rate_experiment(name);
    ASSERT_NE(experiment, nullptr) << name;
    const auto result = run_experiment(*experiment, 20000, 1, 0, EvalPath::kBatched);
    EXPECT_EQ(result.false_negatives, 0u) << name;
    EXPECT_EQ(result.emitted_wrong, 0u) << name;
    EXPECT_GE(result.nominal_errors, result.actual_errors) << name;
  }
}

}  // namespace
}  // namespace vlcsa::harness
