#include "arith/planeops.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VLCSA_HAVE_AVX2_BACKEND 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define VLCSA_HAVE_NEON_BACKEND 1
#include <arm_neon.h>
#endif

namespace vlcsa::arith::planeops {

namespace {

inline bool aligned64(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % kPlaneAlignment) == 0;
}

// ---- scalar backend (the oracle every other backend is pinned to) ----------

void and_scalar(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i] & y[i];
}

void or_scalar(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
               std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i] | y[i];
}

void xor_scalar(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i] ^ y[i];
}

void andnot_scalar(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                   std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i] & ~y[i];
}

void select_scalar(const std::uint64_t* mask, const std::uint64_t* t, const std::uint64_t* f,
                   std::uint64_t* dst, std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) dst[i] = (mask[i] & t[i]) | (~mask[i] & f[i]);
}

void gp_scalar(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* g,
               std::uint64_t* p, std::size_t m) {
  for (std::size_t i = 0; i < m; ++i) {
    g[i] = a[i] & b[i];
    p[i] = a[i] ^ b[i];
  }
}

std::uint64_t popcount_scalar(const std::uint64_t* x, std::size_t m) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < m; ++i) {
    sum += static_cast<std::uint64_t>(std::popcount(x[i]));
  }
  return sum;
}

// One doubling round of the prefix: carry'[i] = carry[i] | (pp[i] & carry[i-off]),
// pp'[i] = pp[i] & pp[i-off], all reads pre-round.  Processing the flat array
// top-down with loads before stores realizes exactly that for any off.
void kogge_scalar(const std::uint64_t* g, const std::uint64_t* p, int n, int lane_words,
                  std::uint64_t* carry, std::uint64_t* pp) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  std::memcpy(carry, g, m * sizeof(std::uint64_t));
  std::memcpy(pp, p, m * sizeof(std::uint64_t));
  for (int d = 1; d < n; d <<= 1) {
    const std::size_t off =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(lane_words);
    for (std::size_t i = m; i-- > off;) {
      carry[i] |= pp[i] & carry[i - off];
      pp[i] &= pp[i - off];
    }
  }
}

void ssand_scalar(std::uint64_t* x, int n, int lane_words, int step) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  const std::size_t off =
      static_cast<std::size_t>(step) * static_cast<std::size_t>(lane_words);
  for (std::size_t i = m; i-- > off;) x[i] &= x[i - off];
  std::memset(x, 0, off * sizeof(std::uint64_t));
}

void transpose_scalar(std::uint64_t block[64]) {
  // Recursive block swap (Hacker's Delight 7-3 style, oriented for a true
  // main-diagonal transpose): at each level, swap the high-column half of
  // the upper row group with the low-column half of the lower row group,
  // for sub-block sizes 32, 16, ..., 1.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((block[k] >> j) ^ block[k | j]) & m;
      block[k] ^= t << j;
      block[k | j] ^= t;
    }
  }
}

// ---- AVX2 backend ----------------------------------------------------------
//
// Built with per-function target attributes so the stock (non -march=native)
// build still carries the AVX2 code paths and runtime dispatch picks them on
// capable hosts.  All memory accesses are unaligned-safe loadu/storeu.

#if VLCSA_HAVE_AVX2_BACKEND

__attribute__((target("avx2"))) void and_avx2(const std::uint64_t* x, const std::uint64_t* y,
                                              std::uint64_t* dst, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_and_si256(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] & y[i];
}

__attribute__((target("avx2"))) void or_avx2(const std::uint64_t* x, const std::uint64_t* y,
                                             std::uint64_t* dst, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] | y[i];
}

__attribute__((target("avx2"))) void xor_avx2(const std::uint64_t* x, const std::uint64_t* y,
                                              std::uint64_t* dst, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] ^ y[i];
}

__attribute__((target("avx2"))) void andnot_avx2(const std::uint64_t* x,
                                                 const std::uint64_t* y, std::uint64_t* dst,
                                                 std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    // _mm256_andnot_si256(a, b) = ~a & b.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_andnot_si256(vy, vx));
  }
  for (; i < m; ++i) dst[i] = x[i] & ~y[i];
}

__attribute__((target("avx2"))) void select_avx2(const std::uint64_t* mask,
                                                 const std::uint64_t* t,
                                                 const std::uint64_t* f, std::uint64_t* dst,
                                                 std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i vm = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const __m256i vt = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i));
    const __m256i vf = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f + i));
    const __m256i sel =
        _mm256_or_si256(_mm256_and_si256(vm, vt), _mm256_andnot_si256(vm, vf));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), sel);
  }
  for (; i < m; ++i) dst[i] = (mask[i] & t[i]) | (~mask[i] & f[i]);
}

__attribute__((target("avx2"))) void gp_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                             std::uint64_t* g, std::uint64_t* p,
                                             std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(g + i), _mm256_and_si256(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i), _mm256_xor_si256(va, vb));
  }
  for (; i < m; ++i) {
    g[i] = a[i] & b[i];
    p[i] = a[i] ^ b[i];
  }
}

__attribute__((target("avx2,popcnt"))) std::uint64_t popcount_avx2(const std::uint64_t* x,
                                                                   std::size_t m) {
  // Lane masks are short (a handful of words); the hardware popcnt loop beats
  // a pshufb reduction until far larger m than the accumulators ever pass.
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < m; ++i) {
    sum += static_cast<std::uint64_t>(__builtin_popcountll(x[i]));
  }
  return sum;
}

// Top-down chunked doubling rounds; within one 4-word chunk all loads happen
// before the stores, and chunks run from the top of the array downward, so
// every read observes the pre-round value for any offset — the same
// pre-round-read semantics as the scalar loop (see kogge_scalar).
__attribute__((target("avx2"))) void kogge_avx2(const std::uint64_t* g, const std::uint64_t* p,
                                                int n, int lane_words, std::uint64_t* carry,
                                                std::uint64_t* pp) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  std::memcpy(carry, g, m * sizeof(std::uint64_t));
  std::memcpy(pp, p, m * sizeof(std::uint64_t));
  for (int d = 1; d < n; d <<= 1) {
    const std::size_t off =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(lane_words);
    std::size_t i = m;
    while (i - off >= 4 && i >= 4) {
      i -= 4;
      const __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(carry + i));
      const __m256i q = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pp + i));
      const __m256i cl =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(carry + i - off));
      const __m256i ql = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pp + i - off));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(carry + i),
                          _mm256_or_si256(c, _mm256_and_si256(q, cl)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pp + i), _mm256_and_si256(q, ql));
    }
    while (i > off) {
      --i;
      carry[i] |= pp[i] & carry[i - off];
      pp[i] &= pp[i - off];
    }
  }
}

__attribute__((target("avx2"))) void ssand_avx2(std::uint64_t* x, int n, int lane_words,
                                                int step) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  const std::size_t off =
      static_cast<std::size_t>(step) * static_cast<std::size_t>(lane_words);
  std::size_t i = m;
  while (i - off >= 4 && i >= 4) {
    i -= 4;
    const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i - off));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), _mm256_and_si256(hi, lo));
  }
  while (i > off) {
    --i;
    x[i] &= x[i - off];
  }
  std::memset(x, 0, off * sizeof(std::uint64_t));
}

// Same recursive block swap as the scalar transpose; sub-block sizes >= 4
// handle four rows per vector op (runs of consecutive k with bit j clear have
// length j, a multiple of 4 there), sizes 2 and 1 finish scalar.
__attribute__((target("avx2"))) void transpose_avx2(std::uint64_t block[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  int j = 32;
  for (; j >= 4; m ^= m << (j >>= 1)) {
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    for (int base = 0; base < 64; base += 2 * j) {
      for (int k = base; k < base + j; k += 4) {
        const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + k));
        const __m256i hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + k + j));
        const __m256i t =
            _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(lo, j), hi), vm);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + k),
                            _mm256_xor_si256(lo, _mm256_slli_epi64(t, j)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + k + j),
                            _mm256_xor_si256(hi, t));
      }
    }
  }
  for (; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((block[k] >> j) ^ block[k | j]) & m;
      block[k] ^= t << j;
      block[k | j] ^= t;
    }
  }
}

#endif  // VLCSA_HAVE_AVX2_BACKEND

// ---- AVX-512 backend -------------------------------------------------------
//
// Same per-function target-attribute scheme as AVX2 (stock builds carry the
// bodies, runtime cpuid picks them), at twice the width: 8 plane words per
// vector.  Requires avx512f+avx512bw; the vpopcntdq popcount kernel is a
// separate dispatch row so Skylake-class parts (avx512bw without vpopcntdq)
// still get the 512-bit boolean/prefix kernels with the hardware-popcnt
// reduction.

#if VLCSA_HAVE_AVX2_BACKEND  // same toolchain gate: x86-64 gcc/clang
#define VLCSA_HAVE_AVX512_BACKEND 1

// GCC's avx512fintrin.h expands the unmasked intrinsics through their masked
// forms with an undefined pass-through operand, which -Wmaybe-uninitialized
// flags at every inline site (GCC bug 105593).  The operand is dead under a
// full mask, so silence the false positive for this section only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f,avx512bw"))) void and_avx512(const std::uint64_t* x,
                                                            const std::uint64_t* y,
                                                            std::uint64_t* dst,
                                                            std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] & y[i];
}

__attribute__((target("avx512f,avx512bw"))) void or_avx512(const std::uint64_t* x,
                                                           const std::uint64_t* y,
                                                           std::uint64_t* dst,
                                                           std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] | y[i];
}

__attribute__((target("avx512f,avx512bw"))) void xor_avx512(const std::uint64_t* x,
                                                            const std::uint64_t* y,
                                                            std::uint64_t* dst,
                                                            std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(vx, vy));
  }
  for (; i < m; ++i) dst[i] = x[i] ^ y[i];
}

__attribute__((target("avx512f,avx512bw"))) void andnot_avx512(const std::uint64_t* x,
                                                               const std::uint64_t* y,
                                                               std::uint64_t* dst,
                                                               std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    // _mm512_andnot_si512(a, b) = ~a & b.
    _mm512_storeu_si512(dst + i, _mm512_andnot_si512(vy, vx));
  }
  for (; i < m; ++i) dst[i] = x[i] & ~y[i];
}

__attribute__((target("avx512f,avx512bw"))) void select_avx512(const std::uint64_t* mask,
                                                               const std::uint64_t* t,
                                                               const std::uint64_t* f,
                                                               std::uint64_t* dst,
                                                               std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i vm = _mm512_loadu_si512(mask + i);
    const __m512i vt = _mm512_loadu_si512(t + i);
    const __m512i vf = _mm512_loadu_si512(f + i);
    // vpternlog 0xCA = (m & t) | (~m & f): one instruction for the select.
    _mm512_storeu_si512(dst + i, _mm512_ternarylogic_epi64(vm, vt, vf, 0xCA));
  }
  for (; i < m; ++i) dst[i] = (mask[i] & t[i]) | (~mask[i] & f[i]);
}

__attribute__((target("avx512f,avx512bw"))) void gp_avx512(const std::uint64_t* a,
                                                           const std::uint64_t* b,
                                                           std::uint64_t* g, std::uint64_t* p,
                                                           std::size_t m) {
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(g + i, _mm512_and_si512(va, vb));
    _mm512_storeu_si512(p + i, _mm512_xor_si512(va, vb));
  }
  for (; i < m; ++i) {
    g[i] = a[i] & b[i];
    p[i] = a[i] ^ b[i];
  }
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t popcount_avx512(
    const std::uint64_t* x, std::size_t m) {
  // Single-instruction per-word popcount (vpopcntq) with a vector accumulator;
  // the horizontal reduce happens once at the end.
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(x + i)));
  }
  std::uint64_t sum = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < m; ++i) {
    sum += static_cast<std::uint64_t>(__builtin_popcountll(x[i]));
  }
  return sum;
}

// Top-down chunked doubling rounds, same pre-round-read argument as
// kogge_avx2: within one 8-word chunk all loads precede the stores, and
// chunks run from the top of the array downward.
__attribute__((target("avx512f,avx512bw"))) void kogge_avx512(const std::uint64_t* g,
                                                              const std::uint64_t* p, int n,
                                                              int lane_words,
                                                              std::uint64_t* carry,
                                                              std::uint64_t* pp) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  std::memcpy(carry, g, m * sizeof(std::uint64_t));
  std::memcpy(pp, p, m * sizeof(std::uint64_t));
  for (int d = 1; d < n; d <<= 1) {
    const std::size_t off =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(lane_words);
    std::size_t i = m;
    while (i - off >= 8 && i >= 8) {
      i -= 8;
      const __m512i c = _mm512_loadu_si512(carry + i);
      const __m512i q = _mm512_loadu_si512(pp + i);
      const __m512i cl = _mm512_loadu_si512(carry + i - off);
      const __m512i ql = _mm512_loadu_si512(pp + i - off);
      // vpternlog 0xF8 = c | (q & cl).
      _mm512_storeu_si512(carry + i, _mm512_ternarylogic_epi64(c, q, cl, 0xF8));
      _mm512_storeu_si512(pp + i, _mm512_and_si512(q, ql));
    }
    while (i > off) {
      --i;
      carry[i] |= pp[i] & carry[i - off];
      pp[i] &= pp[i - off];
    }
  }
}

__attribute__((target("avx512f,avx512bw"))) void ssand_avx512(std::uint64_t* x, int n,
                                                              int lane_words, int step) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  const std::size_t off =
      static_cast<std::size_t>(step) * static_cast<std::size_t>(lane_words);
  std::size_t i = m;
  while (i - off >= 8 && i >= 8) {
    i -= 8;
    const __m512i hi = _mm512_loadu_si512(x + i);
    const __m512i lo = _mm512_loadu_si512(x + i - off);
    _mm512_storeu_si512(x + i, _mm512_and_si512(hi, lo));
  }
  while (i > off) {
    --i;
    x[i] &= x[i - off];
  }
  std::memset(x, 0, off * sizeof(std::uint64_t));
}

// Same recursive block swap as the scalar transpose; sub-block sizes >= 8
// handle eight rows per 512-bit op (runs of consecutive k with bit j clear
// have length j, a multiple of 8 there), size 4 uses one 256-bit op (avx512f
// implies avx2), sizes 2 and 1 finish scalar.
__attribute__((target("avx512f,avx512bw"))) void transpose_avx512(std::uint64_t block[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  int j = 32;
  for (; j >= 8; m ^= m << (j >>= 1)) {
    const __m512i vm = _mm512_set1_epi64(static_cast<long long>(m));
    for (int base = 0; base < 64; base += 2 * j) {
      for (int k = base; k < base + j; k += 8) {
        const __m512i lo = _mm512_loadu_si512(block + k);
        const __m512i hi = _mm512_loadu_si512(block + k + j);
        const __m512i t = _mm512_and_si512(
            _mm512_xor_si512(_mm512_srli_epi64(lo, static_cast<unsigned>(j)), hi), vm);
        _mm512_storeu_si512(block + k,
                            _mm512_xor_si512(lo, _mm512_slli_epi64(t, static_cast<unsigned>(j))));
        _mm512_storeu_si512(block + k + j, _mm512_xor_si512(hi, t));
      }
    }
  }
  {
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    for (int k = 0; k < 64; k += 8) {
      const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + k));
      const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + k + 4));
      const __m256i t = _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(lo, 4), hi), vm);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + k),
                          _mm256_xor_si256(lo, _mm256_slli_epi64(t, 4)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + k + 4),
                          _mm256_xor_si256(hi, t));
    }
    m ^= m << 2;
    j = 2;
  }
  for (; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((block[k] >> j) ^ block[k | j]) & m;
      block[k] ^= t << j;
      block[k | j] ^= t;
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // VLCSA_HAVE_AVX512_BACKEND

// ---- NEON backend ----------------------------------------------------------
//
// aarch64 only (NEON is baseline there, so no runtime CPU check is needed).
// Only the trivially translatable kernels get vector bodies; the structured
// ones reuse the scalar implementations.

#if VLCSA_HAVE_NEON_BACKEND

void and_neon(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) vst1q_u64(dst + i, vandq_u64(vld1q_u64(x + i), vld1q_u64(y + i)));
  for (; i < m; ++i) dst[i] = x[i] & y[i];
}

void or_neon(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
             std::size_t m) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) vst1q_u64(dst + i, vorrq_u64(vld1q_u64(x + i), vld1q_u64(y + i)));
  for (; i < m; ++i) dst[i] = x[i] | y[i];
}

void xor_neon(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) vst1q_u64(dst + i, veorq_u64(vld1q_u64(x + i), vld1q_u64(y + i)));
  for (; i < m; ++i) dst[i] = x[i] ^ y[i];
}

void andnot_neon(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                 std::size_t m) {
  std::size_t i = 0;
  // vbicq_u64(a, b) = a & ~b.
  for (; i + 2 <= m; i += 2) vst1q_u64(dst + i, vbicq_u64(vld1q_u64(x + i), vld1q_u64(y + i)));
  for (; i < m; ++i) dst[i] = x[i] & ~y[i];
}

void select_neon(const std::uint64_t* mask, const std::uint64_t* t, const std::uint64_t* f,
                 std::uint64_t* dst, std::size_t m) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    vst1q_u64(dst + i, vbslq_u64(vld1q_u64(mask + i), vld1q_u64(t + i), vld1q_u64(f + i)));
  }
  for (; i < m; ++i) dst[i] = (mask[i] & t[i]) | (~mask[i] & f[i]);
}

void gp_neon(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* g,
             std::uint64_t* p, std::size_t m) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    vst1q_u64(g + i, vandq_u64(va, vb));
    vst1q_u64(p + i, veorq_u64(va, vb));
  }
  for (; i < m; ++i) {
    g[i] = a[i] & b[i];
    p[i] = a[i] ^ b[i];
  }
}

void kogge_neon(const std::uint64_t* g, const std::uint64_t* p, int n, int lane_words,
                std::uint64_t* carry, std::uint64_t* pp) {
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(lane_words);
  std::memcpy(carry, g, m * sizeof(std::uint64_t));
  std::memcpy(pp, p, m * sizeof(std::uint64_t));
  for (int d = 1; d < n; d <<= 1) {
    const std::size_t off =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(lane_words);
    std::size_t i = m;
    while (i - off >= 2 && i >= 2) {
      i -= 2;
      const uint64x2_t c = vld1q_u64(carry + i);
      const uint64x2_t q = vld1q_u64(pp + i);
      const uint64x2_t cl = vld1q_u64(carry + i - off);
      const uint64x2_t ql = vld1q_u64(pp + i - off);
      vst1q_u64(carry + i, vorrq_u64(c, vandq_u64(q, cl)));
      vst1q_u64(pp + i, vandq_u64(q, ql));
    }
    while (i > off) {
      --i;
      carry[i] |= pp[i] & carry[i - off];
      pp[i] &= pp[i - off];
    }
  }
}

#endif  // VLCSA_HAVE_NEON_BACKEND

// ---- dispatch --------------------------------------------------------------

struct Kernels {
  Backend backend;
  void (*and_)(const std::uint64_t*, const std::uint64_t*, std::uint64_t*, std::size_t);
  void (*or_)(const std::uint64_t*, const std::uint64_t*, std::uint64_t*, std::size_t);
  void (*xor_)(const std::uint64_t*, const std::uint64_t*, std::uint64_t*, std::size_t);
  void (*andnot)(const std::uint64_t*, const std::uint64_t*, std::uint64_t*, std::size_t);
  void (*select)(const std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                 std::uint64_t*, std::size_t);
  void (*gp)(const std::uint64_t*, const std::uint64_t*, std::uint64_t*, std::uint64_t*,
             std::size_t);
  std::uint64_t (*popcount)(const std::uint64_t*, std::size_t);
  void (*kogge)(const std::uint64_t*, const std::uint64_t*, int, int, std::uint64_t*,
                std::uint64_t*);
  void (*ssand)(std::uint64_t*, int, int, int);
  void (*transpose)(std::uint64_t*);
};

constexpr Kernels kScalarKernels = {
    Backend::kScalar, and_scalar,      or_scalar,  xor_scalar, andnot_scalar,
    select_scalar,    gp_scalar,       popcount_scalar,
    kogge_scalar,     ssand_scalar,    transpose_scalar,
};

#if VLCSA_HAVE_AVX2_BACKEND
constexpr Kernels kAvx2Kernels = {
    Backend::kAvx2, and_avx2,      or_avx2,  xor_avx2, andnot_avx2,
    select_avx2,    gp_avx2,       popcount_avx2,
    kogge_avx2,     ssand_avx2,    transpose_avx2,
};
#endif

#if VLCSA_HAVE_AVX512_BACKEND
constexpr Kernels kAvx512Kernels = {
    Backend::kAvx512, and_avx512,    or_avx512,  xor_avx512, andnot_avx512,
    select_avx512,    gp_avx512,     popcount_avx512,
    kogge_avx512,     ssand_avx512,  transpose_avx512,
};
// Skylake-class row: avx512f+avx512bw without avx512vpopcntdq keeps the
// 512-bit kernels but reduces with the hardware-popcnt loop.
constexpr Kernels kAvx512KernelsNoVpopcnt = {
    Backend::kAvx512, and_avx512,    or_avx512,  xor_avx512, andnot_avx512,
    select_avx512,    gp_avx512,     popcount_avx2,
    kogge_avx512,     ssand_avx512,  transpose_avx512,
};
#endif

#if VLCSA_HAVE_NEON_BACKEND
constexpr Kernels kNeonKernels = {
    Backend::kNeon, and_neon,      or_neon,  xor_neon, andnot_neon,
    select_neon,    gp_neon,       popcount_scalar,
    kogge_neon,     ssand_scalar,  transpose_scalar,
};
#endif

const Kernels* kernels_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarKernels;
    case Backend::kAvx2:
#if VLCSA_HAVE_AVX2_BACKEND
      if (__builtin_cpu_supports("avx2")) return &kAvx2Kernels;
#endif
      return nullptr;
    case Backend::kAvx512:
#if VLCSA_HAVE_AVX512_BACKEND
      if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")) {
        return __builtin_cpu_supports("avx512vpopcntdq") ? &kAvx512Kernels
                                                         : &kAvx512KernelsNoVpopcnt;
      }
#endif
      return nullptr;
    case Backend::kNeon:
#if VLCSA_HAVE_NEON_BACKEND
      return &kNeonKernels;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Kernels* best_kernels() {
  if (const Kernels* k = kernels_for(Backend::kAvx512)) return k;
  if (const Kernels* k = kernels_for(Backend::kAvx2)) return k;
  if (const Kernels* k = kernels_for(Backend::kNeon)) return k;
  return &kScalarKernels;
}

const Kernels* resolve_initial() {
  const char* forced = std::getenv("VLCSA_FORCE_BACKEND");
  if (forced == nullptr || std::string_view(forced) == "auto") return best_kernels();
  const std::string_view name(forced);
  Backend backend;
  if (name == "scalar") {
    backend = Backend::kScalar;
  } else if (name == "avx2") {
    backend = Backend::kAvx2;
  } else if (name == "avx512") {
    backend = Backend::kAvx512;
  } else if (name == "neon") {
    backend = Backend::kNeon;
  } else {
    std::fprintf(stderr,
                 "vlcsa: VLCSA_FORCE_BACKEND=%s is not scalar/avx2/avx512/neon/auto; "
                 "using auto dispatch\n",
                 forced);
    return best_kernels();
  }
  if (const Kernels* k = kernels_for(backend)) return k;
  std::fprintf(stderr,
               "vlcsa: VLCSA_FORCE_BACKEND=%s is unsupported on this CPU/build; "
               "falling back to scalar\n",
               forced);
  return &kScalarKernels;
}

std::atomic<const Kernels*>& active_slot() {
  // Function-local so the env override resolves exactly once, on first use,
  // regardless of static-initialization order.
  static std::atomic<const Kernels*> slot{resolve_initial()};
  return slot;
}

inline const Kernels& active() {
  return *active_slot().load(std::memory_order_relaxed);
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon: return "neon";
  }
  return "?";
}

Backend active_backend() { return active().backend; }

bool backend_available(Backend backend) { return kernels_for(backend) != nullptr; }

bool set_backend(Backend backend) {
  const Kernels* k = kernels_for(backend);
  if (k == nullptr) return false;
  active_slot().store(k, std::memory_order_relaxed);
  return true;
}

bool set_backend(std::string_view name) {
  if (name == "auto") {
    active_slot().store(best_kernels(), std::memory_order_relaxed);
    return true;
  }
  if (name == "scalar") return set_backend(Backend::kScalar);
  if (name == "avx2") return set_backend(Backend::kAvx2);
  if (name == "avx512") return set_backend(Backend::kAvx512);
  if (name == "neon") return set_backend(Backend::kNeon);
  return false;
}

void bulk_and(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m) {
  active().and_(x, y, dst, m);
}

void bulk_or(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
             std::size_t m) {
  active().or_(x, y, dst, m);
}

void bulk_xor(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
              std::size_t m) {
  active().xor_(x, y, dst, m);
}

void bulk_andnot(const std::uint64_t* x, const std::uint64_t* y, std::uint64_t* dst,
                 std::size_t m) {
  active().andnot(x, y, dst, m);
}

void bulk_select(const std::uint64_t* mask, const std::uint64_t* t, const std::uint64_t* f,
                 std::uint64_t* dst, std::size_t m) {
  active().select(mask, t, f, dst, m);
}

void bulk_gp(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* g,
             std::uint64_t* p, std::size_t m) {
  active().gp(a, b, g, p, m);
}

std::uint64_t popcount_sum(const std::uint64_t* x, std::size_t m) {
  return active().popcount(x, m);
}

void kogge_stone(const std::uint64_t* g, const std::uint64_t* p, int n, int lane_words,
                 std::uint64_t* carry, std::uint64_t* pp) {
  assert(n >= 1 && lane_words >= 1);
  // Whole-plane kernel: bases must sit on the PlaneVec alignment contract.
  assert(aligned64(g) && aligned64(p) && aligned64(carry) && aligned64(pp));
  (void)aligned64;
  active().kogge(g, p, n, lane_words, carry, pp);
}

void shifted_self_and(std::uint64_t* x, int n, int lane_words, int step) {
  assert(n >= 1 && lane_words >= 1 && step >= 1 && step <= n);
  assert(aligned64(x));
  active().ssand(x, n, lane_words, step);
}

void transpose_64x64(std::uint64_t block[64]) { active().transpose(block); }

}  // namespace vlcsa::arith::planeops
