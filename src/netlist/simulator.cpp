#include "netlist/simulator.hpp"

#include <stdexcept>

namespace vlcsa::netlist {

Simulator::Simulator(const Netlist& nl, int lane_words)
    : nl_(nl),
      lane_words_(lane_words),
      values_(nl.num_gates() * static_cast<std::size_t>(lane_words > 0 ? lane_words : 0), 0) {
  if (lane_words < 1) throw std::invalid_argument("Simulator: lane_words must be >= 1");
}

void Simulator::set_input(std::size_t input_index, std::uint64_t word) {
  values_.at(nl_.inputs().at(input_index).signal.id *
             static_cast<std::size_t>(lane_words_)) = word;
}

void Simulator::set_input(const std::string& name, std::uint64_t word) {
  const auto s = nl_.find_input(name);
  if (!s) throw std::invalid_argument("Simulator: no input named " + name);
  values_[static_cast<std::size_t>(s->id) * static_cast<std::size_t>(lane_words_)] = word;
}

void Simulator::set_input_lanes(std::size_t input_index, const std::uint64_t* words) {
  const std::size_t base = nl_.inputs().at(input_index).signal.id *
                           static_cast<std::size_t>(lane_words_);
  for (int w = 0; w < lane_words_; ++w) {
    values_.at(base + static_cast<std::size_t>(w)) = words[w];
  }
}

void Simulator::run() {
  const auto& gates = nl_.gates();
  const std::size_t lw = static_cast<std::size_t>(lane_words_);
  for (std::uint32_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    std::uint64_t* out = values_.data() + i * lw;
    auto in = [&](int pin) {
      return values_.data() +
             static_cast<std::size_t>(g.fanin[static_cast<std::size_t>(pin)].id) * lw;
    };
    switch (g.kind) {
      case GateKind::kConst0:
        for (std::size_t w = 0; w < lw; ++w) out[w] = 0;
        break;
      case GateKind::kConst1:
        for (std::size_t w = 0; w < lw; ++w) out[w] = ~std::uint64_t{0};
        break;
      case GateKind::kInput:
        break;  // set externally
      case GateKind::kBuf: {
        const std::uint64_t* a = in(0);
        for (std::size_t w = 0; w < lw; ++w) out[w] = a[w];
        break;
      }
      case GateKind::kNot: {
        const std::uint64_t* a = in(0);
        for (std::size_t w = 0; w < lw; ++w) out[w] = ~a[w];
        break;
      }
      case GateKind::kAnd2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = a[w] & b[w];
        break;
      }
      case GateKind::kOr2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = a[w] | b[w];
        break;
      }
      case GateKind::kNand2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = ~(a[w] & b[w]);
        break;
      }
      case GateKind::kNor2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = ~(a[w] | b[w]);
        break;
      }
      case GateKind::kXor2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = a[w] ^ b[w];
        break;
      }
      case GateKind::kXnor2: {
        const std::uint64_t* a = in(0);
        const std::uint64_t* b = in(1);
        for (std::size_t w = 0; w < lw; ++w) out[w] = ~(a[w] ^ b[w]);
        break;
      }
      case GateKind::kMux2: {
        const std::uint64_t* s = in(0);
        const std::uint64_t* d0 = in(1);
        const std::uint64_t* d1 = in(2);
        for (std::size_t w = 0; w < lw; ++w) out[w] = (s[w] & d1[w]) | (~s[w] & d0[w]);
        break;
      }
    }
  }
}

std::uint64_t Simulator::output(const std::string& name) const {
  return output_lanes(name)[0];
}

const std::uint64_t* Simulator::output_lanes(const std::string& name) const {
  const auto s = nl_.find_output(name);
  if (!s) throw std::invalid_argument("Simulator: no output named " + name);
  return value_lanes(*s);
}

}  // namespace vlcsa::netlist
